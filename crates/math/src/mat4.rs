//! Column-major 4×4 matrix.

use crate::{Vec3, Vec4};
use std::ops::Mul;

/// A column-major 4×4 `f32` matrix.
///
/// `cols[c]` is column `c`; element (row `r`, column `c`) is `cols[c][r]`
/// in the conventional maths notation. Transform composition follows the
/// OpenGL convention: `m.transform_point(p)` computes `M · p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    cols: [Vec4; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        cols: [
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        ],
    };

    /// Builds a matrix from four columns.
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Self { cols: [c0, c1, c2, c3] }
    }

    /// Returns column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= 4`.
    pub fn col(&self, c: usize) -> Vec4 {
        self.cols[c]
    }

    /// Returns row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 4`.
    pub fn row(&self, r: usize) -> Vec4 {
        let e = |c: usize| match r {
            0 => self.cols[c].x,
            1 => self.cols[c].y,
            2 => self.cols[c].z,
            3 => self.cols[c].w,
            _ => panic!("Mat4 row out of range: {r}"),
        };
        Vec4::new(e(0), e(1), e(2), e(3))
    }

    /// A pure translation matrix.
    pub fn translation(t: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        m.cols[3] = t.extend(1.0);
        m
    }

    /// A non-uniform scale matrix.
    pub fn scale(s: Vec3) -> Self {
        Self::from_cols(
            Vec4::new(s.x, 0.0, 0.0, 0.0),
            Vec4::new(0.0, s.y, 0.0, 0.0),
            Vec4::new(0.0, 0.0, s.z, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// A uniform scale matrix.
    pub fn uniform_scale(s: f32) -> Self {
        Self::scale(Vec3::splat(s))
    }

    /// Rotation of `angle` radians about the X axis.
    pub fn rotation_x(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, c, s, 0.0),
            Vec4::new(0.0, -s, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation of `angle` radians about the Y axis.
    pub fn rotation_y(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(c, 0.0, -s, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(s, 0.0, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation of `angle` radians about the Z axis.
    pub fn rotation_z(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(c, s, 0.0, 0.0),
            Vec4::new(-s, c, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation of `angle` radians about an arbitrary `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` has (nearly) zero length.
    pub fn rotation_axis(axis: Vec3, angle: f32) -> Self {
        let a = axis.normalize();
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        Self::from_cols(
            Vec4::new(t * a.x * a.x + c, t * a.x * a.y + s * a.z, t * a.x * a.z - s * a.y, 0.0),
            Vec4::new(t * a.x * a.y - s * a.z, t * a.y * a.y + c, t * a.y * a.z + s * a.x, 0.0),
            Vec4::new(t * a.x * a.z + s * a.y, t * a.y * a.z - s * a.x, t * a.z * a.z + c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Transposed copy of `self`.
    pub fn transpose(&self) -> Self {
        Self::from_cols(self.row(0), self.row(1), self.row(2), self.row(3))
    }

    /// Matrix-vector product `M · v`.
    pub fn transform_vec4(&self, v: Vec4) -> Vec4 {
        let c = &self.cols;
        Vec4::new(
            c[0].x * v.x + c[1].x * v.y + c[2].x * v.z + c[3].x * v.w,
            c[0].y * v.x + c[1].y * v.y + c[2].y * v.z + c[3].y * v.w,
            c[0].z * v.x + c[1].z * v.y + c[2].z * v.z + c[3].z * v.w,
            c[0].w * v.x + c[1].w * v.y + c[2].w * v.z + c[3].w * v.w,
        )
    }

    /// Transforms a point (`w = 1`), returning the projected 3-vector.
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        let v = self.transform_vec4(p.extend(1.0));
        if v.w == 1.0 {
            v.truncate()
        } else {
            v.project()
        }
    }

    /// Transforms a direction (`w = 0`), ignoring translation.
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        self.transform_vec4(d.extend(0.0)).truncate()
    }

    /// Determinant of the full 4×4 matrix.
    pub fn determinant(&self) -> f32 {
        let m = |r: usize, c: usize| match r {
            0 => self.cols[c].x,
            1 => self.cols[c].y,
            2 => self.cols[c].z,
            _ => self.cols[c].w,
        };
        let s0 = m(0, 0) * m(1, 1) - m(1, 0) * m(0, 1);
        let s1 = m(0, 0) * m(1, 2) - m(1, 0) * m(0, 2);
        let s2 = m(0, 0) * m(1, 3) - m(1, 0) * m(0, 3);
        let s3 = m(0, 1) * m(1, 2) - m(1, 1) * m(0, 2);
        let s4 = m(0, 1) * m(1, 3) - m(1, 1) * m(0, 3);
        let s5 = m(0, 2) * m(1, 3) - m(1, 2) * m(0, 3);
        let c5 = m(2, 2) * m(3, 3) - m(3, 2) * m(2, 3);
        let c4 = m(2, 1) * m(3, 3) - m(3, 1) * m(2, 3);
        let c3 = m(2, 1) * m(3, 2) - m(3, 1) * m(2, 2);
        let c2 = m(2, 0) * m(3, 3) - m(3, 0) * m(2, 3);
        let c1 = m(2, 0) * m(3, 2) - m(3, 0) * m(2, 2);
        let c0 = m(2, 0) * m(3, 1) - m(3, 0) * m(2, 1);
        s0 * c5 - s1 * c4 + s2 * c3 + s3 * c2 - s4 * c1 + s5 * c0
    }

    /// Full inverse, or `None` when the matrix is singular.
    pub fn try_inverse(&self) -> Option<Self> {
        let m = |r: usize, c: usize| match r {
            0 => self.cols[c].x,
            1 => self.cols[c].y,
            2 => self.cols[c].z,
            _ => self.cols[c].w,
        };
        let s0 = m(0, 0) * m(1, 1) - m(1, 0) * m(0, 1);
        let s1 = m(0, 0) * m(1, 2) - m(1, 0) * m(0, 2);
        let s2 = m(0, 0) * m(1, 3) - m(1, 0) * m(0, 3);
        let s3 = m(0, 1) * m(1, 2) - m(1, 1) * m(0, 2);
        let s4 = m(0, 1) * m(1, 3) - m(1, 1) * m(0, 3);
        let s5 = m(0, 2) * m(1, 3) - m(1, 2) * m(0, 3);
        let c5 = m(2, 2) * m(3, 3) - m(3, 2) * m(2, 3);
        let c4 = m(2, 1) * m(3, 3) - m(3, 1) * m(2, 3);
        let c3 = m(2, 1) * m(3, 2) - m(3, 1) * m(2, 2);
        let c2 = m(2, 0) * m(3, 3) - m(3, 0) * m(2, 3);
        let c1 = m(2, 0) * m(3, 2) - m(3, 0) * m(2, 2);
        let c0 = m(2, 0) * m(3, 1) - m(3, 0) * m(2, 1);
        let det = s0 * c5 - s1 * c4 + s2 * c3 + s3 * c2 - s4 * c1 + s5 * c0;
        if det.abs() < 1e-12 {
            return None;
        }
        let inv = 1.0 / det;
        Some(Self::from_cols(
            Vec4::new(
                (m(1, 1) * c5 - m(1, 2) * c4 + m(1, 3) * c3) * inv,
                (-m(1, 0) * c5 + m(1, 2) * c2 - m(1, 3) * c1) * inv,
                (m(1, 0) * c4 - m(1, 1) * c2 + m(1, 3) * c0) * inv,
                (-m(1, 0) * c3 + m(1, 1) * c1 - m(1, 2) * c0) * inv,
            ),
            Vec4::new(
                (-m(0, 1) * c5 + m(0, 2) * c4 - m(0, 3) * c3) * inv,
                (m(0, 0) * c5 - m(0, 2) * c2 + m(0, 3) * c1) * inv,
                (-m(0, 0) * c4 + m(0, 1) * c2 - m(0, 3) * c0) * inv,
                (m(0, 0) * c3 - m(0, 1) * c1 + m(0, 2) * c0) * inv,
            ),
            Vec4::new(
                (m(3, 1) * s5 - m(3, 2) * s4 + m(3, 3) * s3) * inv,
                (-m(3, 0) * s5 + m(3, 2) * s2 - m(3, 3) * s1) * inv,
                (m(3, 0) * s4 - m(3, 1) * s2 + m(3, 3) * s0) * inv,
                (-m(3, 0) * s3 + m(3, 1) * s1 - m(3, 2) * s0) * inv,
            ),
            Vec4::new(
                (-m(2, 1) * s5 + m(2, 2) * s4 - m(2, 3) * s3) * inv,
                (m(2, 0) * s5 - m(2, 2) * s2 + m(2, 3) * s1) * inv,
                (-m(2, 0) * s4 + m(2, 1) * s2 - m(2, 3) * s0) * inv,
                (m(2, 0) * s3 - m(2, 1) * s1 + m(2, 2) * s0) * inv,
            ),
        ))
    }
}

impl Mul for Mat4 {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        Self {
            cols: [
                self.transform_vec4(rhs.cols[0]),
                self.transform_vec4(rhs.cols[1]),
                self.transform_vec4(rhs.cols[2]),
                self.transform_vec4(rhs.cols[3]),
            ],
        }
    }
}

impl Mul<Vec4> for Mat4 {
    type Output = Vec4;

    fn mul(self, rhs: Vec4) -> Vec4 {
        self.transform_vec4(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn mat_approx_eq(a: &Mat4, b: &Mat4, eps: f32) -> bool {
        (0..4).all(|c| {
            let (ca, cb) = (a.col(c), b.col(c));
            approx_eq(ca.x, cb.x, eps)
                && approx_eq(ca.y, cb.y, eps)
                && approx_eq(ca.z, cb.z, eps)
                && approx_eq(ca.w, cb.w, eps)
        })
    }

    #[test]
    fn identity_is_noop() {
        let p = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat4::IDENTITY.transform_point(p), p);
        assert_eq!(Mat4::IDENTITY * Mat4::IDENTITY, Mat4::IDENTITY);
    }

    #[test]
    fn translation_moves_points_not_dirs() {
        let t = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.transform_point(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.transform_dir(Vec3::X), Vec3::X);
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let r = Mat4::rotation_z(std::f32::consts::FRAC_PI_2);
        let p = r.transform_point(Vec3::X);
        assert!(approx_eq(p.x, 0.0, 1e-6));
        assert!(approx_eq(p.y, 1.0, 1e-6));
    }

    #[test]
    fn rotation_axis_matches_dedicated() {
        for angle in [0.3f32, 1.2, -0.7] {
            let a = Mat4::rotation_axis(Vec3::X, angle);
            let b = Mat4::rotation_x(angle);
            assert!(mat_approx_eq(&a, &b, 1e-5));
            let a = Mat4::rotation_axis(Vec3::Y, angle);
            let b = Mat4::rotation_y(angle);
            assert!(mat_approx_eq(&a, &b, 1e-5));
            let a = Mat4::rotation_axis(Vec3::Z, angle);
            let b = Mat4::rotation_z(angle);
            assert!(mat_approx_eq(&a, &b, 1e-5));
        }
    }

    #[test]
    fn compose_translate_then_scale() {
        // M = T * S applies scale first.
        let m = Mat4::translation(Vec3::new(1.0, 0.0, 0.0)) * Mat4::uniform_scale(2.0);
        assert_eq!(m.transform_point(Vec3::X), Vec3::new(3.0, 0.0, 0.0));
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Mat4::translation(Vec3::new(1.0, 2.0, 3.0))
            * Mat4::rotation_axis(Vec3::new(1.0, 1.0, 0.5), 0.8)
            * Mat4::scale(Vec3::new(2.0, 3.0, 0.5));
        let inv = m.try_inverse().expect("invertible");
        assert!(mat_approx_eq(&(m * inv), &Mat4::IDENTITY, 1e-4));
        assert!(mat_approx_eq(&(inv * m), &Mat4::IDENTITY, 1e-4));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat4::scale(Vec3::new(1.0, 1.0, 0.0));
        assert!(m.try_inverse().is_none());
        assert!(approx_eq(m.determinant(), 0.0, 1e-9));
    }

    #[test]
    fn determinant_of_scale() {
        let m = Mat4::scale(Vec3::new(2.0, 3.0, 4.0));
        assert!(approx_eq(m.determinant(), 24.0, 1e-4));
    }

    #[test]
    fn transpose_involution() {
        let m = Mat4::rotation_axis(Vec3::new(0.3, -1.0, 0.4), 0.9);
        assert!(mat_approx_eq(&m.transpose().transpose(), &m, 0.0));
        // Rotation matrices: inverse == transpose.
        assert!(mat_approx_eq(&m.transpose(), &m.try_inverse().unwrap(), 1e-5));
    }

    #[test]
    fn row_col_consistency() {
        let m = Mat4::translation(Vec3::new(5.0, 6.0, 7.0));
        assert_eq!(m.row(0).w, 5.0);
        assert_eq!(m.col(3).x, 5.0);
    }
}
