//! Planes and view frusta.

use crate::{Aabb, Mat4, Vec3, Vec4};

/// A plane `n·x + d = 0` with unit normal `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    /// Unit normal.
    pub normal: Vec3,
    /// Signed offset; distance from origin along `-normal`.
    pub d: f32,
}

impl Plane {
    /// Plane with the given (normalized on construction) normal through
    /// `point`.
    ///
    /// # Panics
    ///
    /// Panics if `normal` has (nearly) zero length.
    pub fn from_point_normal(point: Vec3, normal: Vec3) -> Self {
        let n = normal.normalize();
        Self { normal: n, d: -n.dot(point) }
    }

    /// Plane through three counter-clockwise points.
    ///
    /// # Panics
    ///
    /// Panics if the points are (nearly) collinear.
    pub fn from_points(a: Vec3, b: Vec3, c: Vec3) -> Self {
        Self::from_point_normal(a, (b - a).cross(c - a))
    }

    /// Builds a plane from homogeneous coefficients `(a, b, c, d)` such
    /// that `ax + by + cz + d >= 0` is the positive half-space; the result
    /// is normalized.
    ///
    /// # Panics
    ///
    /// Panics if `(a, b, c)` has (nearly) zero length.
    pub fn from_coefficients(v: Vec4) -> Self {
        let n = Vec3::new(v.x, v.y, v.z);
        let len = n.length();
        assert!(len > crate::EPSILON, "plane normal has zero length");
        Self { normal: n / len, d: v.w / len }
    }

    /// Signed distance from `p` to the plane (positive on the normal side).
    pub fn signed_distance(&self, p: Vec3) -> f32 {
        self.normal.dot(p) + self.d
    }

    /// `true` when the box is entirely in the negative half-space.
    pub fn aabb_outside(&self, bb: &Aabb) -> bool {
        // The corner of the box furthest along the normal.
        let c = bb.center();
        let h = bb.half_extents();
        let r = h.x * self.normal.x.abs() + h.y * self.normal.y.abs() + h.z * self.normal.z.abs();
        self.signed_distance(c) < -r
    }
}

/// The six planes of a view frustum, normals pointing inward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frustum {
    planes: [Plane; 6],
}

impl Frustum {
    /// Extracts frustum planes from a combined view-projection matrix using
    /// the Gribb–Hartmann method. Points with clip-space coordinates inside
    /// `-w <= x,y,z <= w` are inside the frustum.
    pub fn from_view_proj(vp: &Mat4) -> Self {
        let r0 = vp.row(0);
        let r1 = vp.row(1);
        let r2 = vp.row(2);
        let r3 = vp.row(3);
        let add = |a: Vec4, b: Vec4| Vec4::new(a.x + b.x, a.y + b.y, a.z + b.z, a.w + b.w);
        let sub = |a: Vec4, b: Vec4| Vec4::new(a.x - b.x, a.y - b.y, a.z - b.z, a.w - b.w);
        Self {
            planes: [
                Plane::from_coefficients(add(r3, r0)), // left
                Plane::from_coefficients(sub(r3, r0)), // right
                Plane::from_coefficients(add(r3, r1)), // bottom
                Plane::from_coefficients(sub(r3, r1)), // top
                Plane::from_coefficients(add(r3, r2)), // near
                Plane::from_coefficients(sub(r3, r2)), // far
            ],
        }
    }

    /// The six planes, normals pointing into the frustum.
    pub fn planes(&self) -> &[Plane; 6] {
        &self.planes
    }

    /// `true` when `p` is inside (or on the boundary of) the frustum.
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.planes.iter().all(|pl| pl.signed_distance(p) >= -crate::EPSILON)
    }

    /// Conservative box test: `false` only when the box is certainly
    /// entirely outside the frustum.
    pub fn intersects_aabb(&self, bb: &Aabb) -> bool {
        !self.planes.iter().any(|pl| pl.aabb_outside(bb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transforms::{look_at, perspective};
    use crate::approx_eq;

    #[test]
    fn signed_distance_sign_convention() {
        let p = Plane::from_point_normal(Vec3::ZERO, Vec3::Y);
        assert!(p.signed_distance(Vec3::new(0.0, 2.0, 0.0)) > 0.0);
        assert!(p.signed_distance(Vec3::new(0.0, -2.0, 0.0)) < 0.0);
        assert!(approx_eq(p.signed_distance(Vec3::X), 0.0, 1e-6));
    }

    #[test]
    fn plane_from_points_ccw_normal() {
        let p = Plane::from_points(Vec3::ZERO, Vec3::X, Vec3::Y);
        assert!(approx_eq(p.normal.z, 1.0, 1e-6));
    }

    #[test]
    fn aabb_outside_detection() {
        let p = Plane::from_point_normal(Vec3::ZERO, Vec3::Y);
        let below = Aabb::new(Vec3::new(-1.0, -3.0, -1.0), Vec3::new(1.0, -1.0, 1.0));
        let straddle = Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0));
        assert!(p.aabb_outside(&below));
        assert!(!p.aabb_outside(&straddle));
    }

    fn test_frustum() -> Frustum {
        let proj = perspective(std::f32::consts::FRAC_PI_3, 800.0 / 480.0, 0.1, 100.0);
        let view = look_at(Vec3::ZERO, -Vec3::Z, Vec3::Y);
        Frustum::from_view_proj(&(proj * view))
    }

    #[test]
    fn frustum_contains_points_in_front() {
        let f = test_frustum();
        assert!(f.contains_point(Vec3::new(0.0, 0.0, -5.0)));
        assert!(!f.contains_point(Vec3::new(0.0, 0.0, 5.0))); // behind camera
        assert!(!f.contains_point(Vec3::new(0.0, 0.0, -200.0))); // past far
        assert!(!f.contains_point(Vec3::new(50.0, 0.0, -1.0))); // far left/right
    }

    #[test]
    fn frustum_aabb_culling() {
        let f = test_frustum();
        let visible = Aabb::from_center_half_extents(Vec3::new(0.0, 0.0, -10.0), Vec3::ONE);
        let behind = Aabb::from_center_half_extents(Vec3::new(0.0, 0.0, 10.0), Vec3::ONE);
        assert!(f.intersects_aabb(&visible));
        assert!(!f.intersects_aabb(&behind));
    }

    #[test]
    fn frustum_aabb_straddling_near_plane() {
        let f = test_frustum();
        let straddle = Aabb::from_center_half_extents(Vec3::new(0.0, 0.0, 0.0), Vec3::splat(0.5));
        assert!(f.intersects_aabb(&straddle));
    }
}
