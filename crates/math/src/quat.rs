//! Unit quaternions for rigid-body orientation.

use crate::{Mat4, Vec3, Vec4};
use std::ops::Mul;

/// A quaternion `w + xi + yj + zk`, used (normalized) for rotations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Vector (imaginary) part, x component.
    pub x: f32,
    /// Vector (imaginary) part, y component.
    pub y: f32,
    /// Vector (imaginary) part, z component.
    pub z: f32,
    /// Scalar (real) part.
    pub w: f32,
}

impl Default for Quat {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Self = Self { x: 0.0, y: 0.0, z: 0.0, w: 1.0 };

    /// Creates a quaternion from raw components (not normalized).
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// Rotation of `angle` radians about `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` has (nearly) zero length.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Self {
        let a = axis.normalize();
        let (s, c) = (angle * 0.5).sin_cos();
        Self::new(a.x * s, a.y * s, a.z * s, c)
    }

    /// Squared norm.
    pub fn length_squared(self) -> f32 {
        self.x * self.x + self.y * self.y + self.z * self.z + self.w * self.w
    }

    /// Norm.
    pub fn length(self) -> f32 {
        self.length_squared().sqrt()
    }

    /// Returns the unit quaternion with the same orientation.
    ///
    /// # Panics
    ///
    /// Panics if the quaternion has (nearly) zero norm.
    pub fn normalize(self) -> Self {
        let len = self.length();
        assert!(len > crate::EPSILON, "normalize: quaternion has zero norm");
        Self::new(self.x / len, self.y / len, self.z / len, self.w / len)
    }

    /// Conjugate; for unit quaternions this is the inverse rotation.
    pub fn conjugate(self) -> Self {
        Self::new(-self.x, -self.y, -self.z, self.w)
    }

    /// Rotates a vector by this (unit) quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2*q_vec × (q_vec × v + w*v)
        let qv = Vec3::new(self.x, self.y, self.z);
        let t = qv.cross(v) * 2.0;
        v + t * self.w + qv.cross(t)
    }

    /// Converts to a rotation matrix. Assumes `self` is normalized.
    pub fn to_mat4(self) -> Mat4 {
        let (x, y, z, w) = (self.x, self.y, self.z, self.w);
        let (x2, y2, z2) = (x + x, y + y, z + z);
        let (xx, yy, zz) = (x * x2, y * y2, z * z2);
        let (xy, xz, yz) = (x * y2, x * z2, y * z2);
        let (wx, wy, wz) = (w * x2, w * y2, w * z2);
        Mat4::from_cols(
            Vec4::new(1.0 - yy - zz, xy + wz, xz - wy, 0.0),
            Vec4::new(xy - wz, 1.0 - xx - zz, yz + wx, 0.0),
            Vec4::new(xz + wy, yz - wx, 1.0 - xx - yy, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Integrates an angular velocity `omega` (radians/s) over `dt`,
    /// returning the normalized result. Standard first-order rigid-body
    /// update: `q' = normalize(q + 0.5 * (omega_quat * q) * dt)`.
    pub fn integrate(self, omega: Vec3, dt: f32) -> Self {
        let dq = Quat::new(omega.x, omega.y, omega.z, 0.0) * self;
        let q = Quat::new(
            self.x + 0.5 * dq.x * dt,
            self.y + 0.5 * dq.y * dt,
            self.z + 0.5 * dq.z * dt,
            self.w + 0.5 * dq.w * dt,
        );
        q.normalize()
    }
}

impl Mul for Quat {
    type Output = Self;

    /// Hamilton product; `(a * b).rotate(v) == a.rotate(b.rotate(v))`.
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
            self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f32::consts::{FRAC_PI_2, PI};

    fn vec_approx(a: Vec3, b: Vec3, eps: f32) -> bool {
        approx_eq(a.x, b.x, eps) && approx_eq(a.y, b.y, eps) && approx_eq(a.z, b.z, eps)
    }

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Quat::IDENTITY.rotate(v), v);
    }

    #[test]
    fn quarter_turn_about_z() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!(vec_approx(q.rotate(Vec3::X), Vec3::Y, 1e-6));
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let a = Quat::from_axis_angle(Vec3::Z, 0.7);
        let b = Quat::from_axis_angle(Vec3::X, -0.4);
        let v = Vec3::new(0.3, -1.2, 2.0);
        assert!(vec_approx((a * b).rotate(v), a.rotate(b.rotate(v)), 1e-5));
    }

    #[test]
    fn conjugate_is_inverse() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, -1.0), 1.1);
        let v = Vec3::new(4.0, 5.0, 6.0);
        assert!(vec_approx(q.conjugate().rotate(q.rotate(v)), v, 1e-4));
    }

    #[test]
    fn matrix_agrees_with_quaternion_rotation() {
        let q = Quat::from_axis_angle(Vec3::new(0.2, 0.9, -0.5), 2.2);
        let v = Vec3::new(-1.0, 0.5, 3.0);
        assert!(vec_approx(q.to_mat4().transform_point(v), q.rotate(v), 1e-4));
    }

    #[test]
    fn half_turn_flips() {
        let q = Quat::from_axis_angle(Vec3::Y, PI);
        assert!(vec_approx(q.rotate(Vec3::X), -Vec3::X, 1e-5));
    }

    #[test]
    fn integrate_small_step_approximates_axis_angle() {
        let omega = Vec3::new(0.0, 0.0, 1.0); // 1 rad/s about Z
        let mut q = Quat::IDENTITY;
        let dt = 1e-3;
        for _ in 0..((FRAC_PI_2 / dt) as usize) {
            q = q.integrate(omega, dt);
        }
        assert!(vec_approx(q.rotate(Vec3::X), Vec3::Y, 1e-2));
    }

    #[test]
    fn normalized_after_integration() {
        let q = Quat::IDENTITY.integrate(Vec3::new(3.0, -2.0, 5.0), 0.1);
        assert!(approx_eq(q.length(), 1.0, 1e-5));
    }
}
