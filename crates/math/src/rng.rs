//! A small deterministic pseudo-random number generator.
//!
//! The workspace builds offline, so it cannot pull the `rand` crate;
//! scene generation and randomized tests instead use this SplitMix64
//! generator. It is seedable, portable, and fast — statistical quality
//! is far beyond what procedural scene placement or property-style
//! tests need (SplitMix64 passes BigCrush).
//!
//! ```
//! use rbcd_math::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let x = rng.gen_range(-1.0f32..1.0);
//! assert!((-1.0..1.0).contains(&x));
//! assert_eq!(Rng::seed_from_u64(42).next_u64(), Rng::seed_from_u64(42).next_u64());
//! ```

use std::ops::Range;

/// A seedable SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical sequences on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Draws a uniform sample in `[range.start, range.end)`.
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self;
}

impl SampleRange for f32 {
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + (range.end - range.start) * rng.gen_f32()
    }
}

impl SampleRange for f64 {
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + (range.end - range.start) * rng.gen_f64()
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift bounded sampling; the bias is below
                // 2^-64 per draw, immaterial for scene generation.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + r as $t
            }
        }
    )*};
}

impl_sample_int!(u16, u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8).map({ let mut r = Rng::seed_from_u64(7); move |_| r.next_u64() }).collect();
        let b: Vec<u64> = (0..8).map({ let mut r = Rng::seed_from_u64(7); move |_| r.next_u64() }).collect();
        assert_eq!(a, b);
        let c = Rng::seed_from_u64(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn f32_range_respected() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f32_mean_is_roughly_centered() {
        let mut rng = Rng::seed_from_u64(3);
        let mean: f32 = (0..10_000).map(|_| rng.gen_range(0.0f32..1.0)).sum::<f32>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
