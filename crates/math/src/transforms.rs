//! Camera, projection, and viewport transforms.
//!
//! Conventions match OpenGL ES (the API the paper's GPU implements):
//! right-handed eye space looking down `-Z`, clip space `-w..w`, NDC
//! `-1..1` on every axis, and window depth remapped to `0..1`.

use crate::{Mat4, Vec3, Vec4};

/// Right-handed perspective projection.
///
/// `fov_y` is the vertical field of view in radians; `near`/`far` are the
/// positive distances to the clip planes.
///
/// # Panics
///
/// Panics if `near <= 0`, `far <= near`, `aspect <= 0`, or
/// `fov_y` is not in `(0, π)`.
pub fn perspective(fov_y: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
    assert!(near > 0.0 && far > near, "perspective: invalid near/far ({near}, {far})");
    assert!(aspect > 0.0, "perspective: invalid aspect {aspect}");
    assert!(fov_y > 0.0 && fov_y < std::f32::consts::PI, "perspective: invalid fov {fov_y}");
    let f = 1.0 / (fov_y * 0.5).tan();
    let nf = 1.0 / (near - far);
    Mat4::from_cols(
        Vec4::new(f / aspect, 0.0, 0.0, 0.0),
        Vec4::new(0.0, f, 0.0, 0.0),
        Vec4::new(0.0, 0.0, (far + near) * nf, -1.0),
        Vec4::new(0.0, 0.0, 2.0 * far * near * nf, 0.0),
    )
}

/// Right-handed orthographic projection onto `[-1, 1]^3` NDC.
///
/// # Panics
///
/// Panics if any interval is empty.
pub fn orthographic(left: f32, right: f32, bottom: f32, top: f32, near: f32, far: f32) -> Mat4 {
    assert!(right > left && top > bottom && far > near, "orthographic: empty interval");
    let rl = 1.0 / (right - left);
    let tb = 1.0 / (top - bottom);
    let fnr = 1.0 / (far - near);
    Mat4::from_cols(
        Vec4::new(2.0 * rl, 0.0, 0.0, 0.0),
        Vec4::new(0.0, 2.0 * tb, 0.0, 0.0),
        Vec4::new(0.0, 0.0, -2.0 * fnr, 0.0),
        Vec4::new(-(right + left) * rl, -(top + bottom) * tb, -(far + near) * fnr, 1.0),
    )
}

/// Right-handed look-at view matrix.
///
/// # Panics
///
/// Panics if `eye == target` or `up` is parallel to the view direction.
pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
    let f = (target - eye).normalize();
    let s = f.cross(up).normalize();
    let u = s.cross(f);
    Mat4::from_cols(
        Vec4::new(s.x, u.x, -f.x, 0.0),
        Vec4::new(s.y, u.y, -f.y, 0.0),
        Vec4::new(s.z, u.z, -f.z, 0.0),
        Vec4::new(-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0),
    )
}

/// Window-space mapping from NDC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Viewport {
    /// Creates a viewport of the given pixel dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "viewport must be non-empty");
        Self { width, height }
    }

    /// Aspect ratio `width / height`.
    pub fn aspect(&self) -> f32 {
        self.width as f32 / self.height as f32
    }
}

/// Maps NDC `[-1,1]^2 × [-1,1]` to window coordinates
/// `[0,w] × [0,h] × [0,1]` (depth remapped to `0..1`, 0 = near).
pub fn viewport(ndc: Vec3, vp: Viewport) -> Vec3 {
    Vec3::new(
        (ndc.x * 0.5 + 0.5) * vp.width as f32,
        (ndc.y * 0.5 + 0.5) * vp.height as f32,
        ndc.z * 0.5 + 0.5,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn perspective_maps_near_far_to_ndc() {
        let p = perspective(1.0, 1.0, 1.0, 10.0);
        let near = p.transform_vec4(Vec4::new(0.0, 0.0, -1.0, 1.0)).project();
        let far = p.transform_vec4(Vec4::new(0.0, 0.0, -10.0, 1.0)).project();
        assert!(approx_eq(near.z, -1.0, 1e-5));
        assert!(approx_eq(far.z, 1.0, 1e-5));
    }

    #[test]
    fn perspective_depth_monotonic() {
        let p = perspective(1.0, 1.0, 0.5, 50.0);
        let mut last = -2.0;
        for d in [0.5f32, 1.0, 2.0, 5.0, 20.0, 50.0] {
            let z = p.transform_vec4(Vec4::new(0.0, 0.0, -d, 1.0)).project().z;
            assert!(z > last, "depth must increase with distance");
            last = z;
        }
    }

    #[test]
    #[should_panic(expected = "invalid near/far")]
    fn perspective_rejects_bad_planes() {
        let _ = perspective(1.0, 1.0, 1.0, 0.5);
    }

    #[test]
    fn orthographic_maps_corners() {
        let o = orthographic(-2.0, 2.0, -1.0, 1.0, 0.0, 10.0);
        let c = o.transform_point(Vec3::new(2.0, 1.0, -10.0));
        assert!(approx_eq(c.x, 1.0, 1e-6));
        assert!(approx_eq(c.y, 1.0, 1e-6));
        assert!(approx_eq(c.z, 1.0, 1e-6));
    }

    #[test]
    fn look_at_centers_target() {
        let v = look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        let t = v.transform_point(Vec3::ZERO);
        assert!(approx_eq(t.x, 0.0, 1e-5));
        assert!(approx_eq(t.y, 0.0, 1e-5));
        assert!(approx_eq(t.z, -5.0, 1e-5)); // 5 units in front (-Z)
    }

    #[test]
    fn look_at_preserves_handedness() {
        let v = look_at(Vec3::new(3.0, 2.0, 5.0), Vec3::ZERO, Vec3::Y);
        // A view matrix is rigid: determinant 1.
        assert!(approx_eq(v.determinant(), 1.0, 1e-4));
    }

    #[test]
    fn viewport_mapping() {
        let vp = Viewport::new(800, 480);
        let w = viewport(Vec3::new(0.0, 0.0, 0.0), vp);
        assert_eq!(w, Vec3::new(400.0, 240.0, 0.5));
        let c = viewport(Vec3::new(-1.0, -1.0, -1.0), vp);
        assert_eq!(c, Vec3::new(0.0, 0.0, 0.0));
        assert!(approx_eq(vp.aspect(), 800.0 / 480.0, 1e-6));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn viewport_rejects_zero() {
        let _ = Viewport::new(0, 480);
    }
}
