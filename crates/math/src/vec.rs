//! Fixed-size vector types.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! impl_common_ops {
    ($ty:ident { $($field:ident),+ }) => {
        impl Add for $ty {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self { $($field: self.$field + rhs.$field),+ }
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: Self) {
                $(self.$field += rhs.$field;)+
            }
        }
        impl Sub for $ty {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self { $($field: self.$field - rhs.$field),+ }
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: Self) {
                $(self.$field -= rhs.$field;)+
            }
        }
        impl Mul<f32> for $ty {
            type Output = Self;
            fn mul(self, rhs: f32) -> Self {
                Self { $($field: self.$field * rhs),+ }
            }
        }
        impl Mul<$ty> for f32 {
            type Output = $ty;
            fn mul(self, rhs: $ty) -> $ty {
                rhs * self
            }
        }
        impl MulAssign<f32> for $ty {
            fn mul_assign(&mut self, rhs: f32) {
                $(self.$field *= rhs;)+
            }
        }
        impl Div<f32> for $ty {
            type Output = Self;
            fn div(self, rhs: f32) -> Self {
                Self { $($field: self.$field / rhs),+ }
            }
        }
        impl DivAssign<f32> for $ty {
            fn div_assign(&mut self, rhs: f32) {
                $(self.$field /= rhs;)+
            }
        }
        impl Neg for $ty {
            type Output = Self;
            fn neg(self) -> Self {
                Self { $($field: -self.$field),+ }
            }
        }

        impl $ty {
            /// Component-wise multiplication.
            pub fn mul_elem(self, rhs: Self) -> Self {
                Self { $($field: self.$field * rhs.$field),+ }
            }

            /// Component-wise minimum.
            pub fn min(self, rhs: Self) -> Self {
                Self { $($field: self.$field.min(rhs.$field)),+ }
            }

            /// Component-wise maximum.
            pub fn max(self, rhs: Self) -> Self {
                Self { $($field: self.$field.max(rhs.$field)),+ }
            }

            /// Dot product.
            pub fn dot(self, rhs: Self) -> f32 {
                let mut acc = 0.0;
                $(acc += self.$field * rhs.$field;)+
                acc
            }

            /// Squared Euclidean length.
            pub fn length_squared(self) -> f32 {
                self.dot(self)
            }

            /// Euclidean length.
            pub fn length(self) -> f32 {
                self.length_squared().sqrt()
            }

            /// Squared distance to `rhs`.
            pub fn distance_squared(self, rhs: Self) -> f32 {
                (self - rhs).length_squared()
            }

            /// Distance to `rhs`.
            pub fn distance(self, rhs: Self) -> f32 {
                (self - rhs).length()
            }

            /// Returns the unit vector pointing in the same direction, or
            /// `None` when the length is (nearly) zero.
            pub fn try_normalize(self) -> Option<Self> {
                let len = self.length();
                if len > crate::EPSILON {
                    Some(self / len)
                } else {
                    None
                }
            }

            /// Returns the unit vector pointing in the same direction.
            ///
            /// # Panics
            ///
            /// Panics if the vector has (nearly) zero length.
            pub fn normalize(self) -> Self {
                self.try_normalize()
                    .expect("normalize: vector has zero length")
            }

            /// Linear interpolation between `self` and `rhs`.
            pub fn lerp(self, rhs: Self, t: f32) -> Self {
                self + (rhs - self) * t
            }

            /// `true` when every component is finite.
            pub fn is_finite(self) -> bool {
                let mut ok = true;
                $(ok &= self.$field.is_finite();)+
                ok
            }
        }
    };
}

/// A two-dimensional `f32` vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

/// A three-dimensional `f32` vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// A four-dimensional `f32` vector (homogeneous coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

impl_common_ops!(Vec2 { x, y });
impl_common_ops!(Vec3 { x, y, z });
impl_common_ops!(Vec4 { x, y, z, w });

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Self = Self { x: 0.0, y: 0.0 };
    /// The all-ones vector.
    pub const ONE: Self = Self { x: 1.0, y: 1.0 };

    /// Creates a vector from components.
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// 2-D cross product (z component of the 3-D cross of the embeddings).
    ///
    /// Positive when `rhs` is counter-clockwise from `self`.
    pub fn perp_dot(self, rhs: Self) -> f32 {
        self.x * rhs.y - self.y * rhs.x
    }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Self = Self { x: 0.0, y: 0.0, z: 0.0 };
    /// The all-ones vector.
    pub const ONE: Self = Self { x: 1.0, y: 1.0, z: 1.0 };
    /// Unit X axis.
    pub const X: Self = Self { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit Y axis.
    pub const Y: Self = Self { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit Z axis.
    pub const Z: Self = Self { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Creates a vector with all components set to `v`.
    pub const fn splat(v: f32) -> Self {
        Self { x: v, y: v, z: v }
    }

    /// Cross product.
    pub fn cross(self, rhs: Self) -> Self {
        Self {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Extends to homogeneous coordinates with the given `w`.
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }

    /// Drops the Z component.
    pub fn truncate(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Largest component value.
    pub fn max_element(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component value.
    pub fn min_element(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Component-wise absolute value.
    pub fn abs(self) -> Self {
        Self::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Returns an arbitrary unit vector orthogonal to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` has (nearly) zero length.
    pub fn any_orthonormal(self) -> Self {
        let n = self.normalize();
        let other = if n.x.abs() < 0.9 { Self::X } else { Self::Y };
        n.cross(other).normalize()
    }
}

impl Vec4 {
    /// The zero vector.
    pub const ZERO: Self = Self { x: 0.0, y: 0.0, z: 0.0, w: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// Drops the W component.
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective division: `(x/w, y/w, z/w)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `w` is zero.
    pub fn project(self) -> Vec3 {
        debug_assert!(self.w != 0.0, "project: w is zero");
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }
}

impl From<[f32; 2]> for Vec2 {
    fn from(a: [f32; 2]) -> Self {
        Self::new(a[0], a[1])
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl From<[f32; 4]> for Vec4 {
    fn from(a: [f32; 4]) -> Self {
        Self::new(a[0], a[1], a[2], a[3])
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.x, self.y, self.z, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::splat(3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn vec3_dot_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn vec3_length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        let n = v.normalize();
        assert!(approx_eq(n.length(), 1.0, 1e-6));
        assert!(Vec3::ZERO.try_normalize().is_none());
    }

    #[test]
    #[should_panic(expected = "zero length")]
    fn normalize_zero_panics() {
        let _ = Vec3::ZERO.normalize();
    }

    #[test]
    fn vec4_project() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn vec2_perp_dot_orientation() {
        // Counter-clockwise quarter turn is positive.
        assert!(Vec2::new(1.0, 0.0).perp_dot(Vec2::new(0.0, 1.0)) > 0.0);
        assert!(Vec2::new(0.0, 1.0).perp_dot(Vec2::new(1.0, 0.0)) < 0.0);
    }

    #[test]
    fn min_max_elementwise() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
        assert_eq!(a.max_element(), 5.0);
        assert_eq!(a.min_element(), 1.0);
    }

    #[test]
    fn any_orthonormal_is_orthogonal() {
        for v in [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(1.0, 2.0, -3.0)] {
            let o = v.any_orthonormal();
            assert!(approx_eq(o.length(), 1.0, 1e-5));
            assert!(approx_eq(o.dot(v.normalize()), 0.0, 1e-5));
        }
    }

    #[test]
    fn conversions_roundtrip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let arr: [f32; 3] = v.into();
        assert_eq!(Vec3::from(arr), v);
        assert_eq!(v.extend(1.0).truncate(), v);
    }

    #[test]
    fn index_access() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }
}
