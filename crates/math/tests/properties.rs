//! Randomized property tests for the math substrate, driven by the
//! workspace's own seeded [`Rng`] (the build is offline, so no external
//! property-testing framework is available).

use rbcd_math::{Aabb, Mat4, Quat, Rng, Vec3};

const CASES: usize = 256;

fn small_f32(rng: &mut Rng) -> f32 {
    rng.gen_range(-100.0f32..100.0)
}

fn vec3(rng: &mut Rng) -> Vec3 {
    Vec3::new(small_f32(rng), small_f32(rng), small_f32(rng))
}

fn nonzero_vec3(rng: &mut Rng) -> Vec3 {
    loop {
        let v = vec3(rng);
        if v.length() > 1e-3 {
            return v;
        }
    }
}

fn vec_close(a: Vec3, b: Vec3, eps: f32) -> bool {
    (a - b).length() <= eps * (1.0 + a.length().max(b.length()))
}

#[test]
fn dot_is_commutative() {
    let mut rng = Rng::seed_from_u64(0x01);
    for _ in 0..CASES {
        let (a, b) = (vec3(&mut rng), vec3(&mut rng));
        assert!((a.dot(b) - b.dot(a)).abs() < 1e-3);
    }
}

#[test]
fn cross_is_orthogonal() {
    let mut rng = Rng::seed_from_u64(0x02);
    for _ in 0..CASES {
        let (a, b) = (nonzero_vec3(&mut rng), nonzero_vec3(&mut rng));
        let c = a.cross(b);
        // |a·(a×b)| is bounded by rounding relative to the magnitudes.
        let scale = a.length() * b.length() * a.length().max(b.length());
        assert!(a.dot(c).abs() <= 1e-3 * scale.max(1.0));
        assert!(b.dot(c).abs() <= 1e-3 * scale.max(1.0));
    }
}

#[test]
fn normalize_has_unit_length() {
    let mut rng = Rng::seed_from_u64(0x03);
    for _ in 0..CASES {
        let v = nonzero_vec3(&mut rng);
        assert!((v.normalize().length() - 1.0).abs() < 1e-4);
    }
}

#[test]
fn matrix_inverse_roundtrips_points() {
    let mut rng = Rng::seed_from_u64(0x04);
    for _ in 0..CASES {
        let t = vec3(&mut rng);
        let axis = nonzero_vec3(&mut rng);
        let angle = rng.gen_range(-3.0f32..3.0);
        let p = vec3(&mut rng);
        let m = Mat4::translation(t) * Mat4::rotation_axis(axis, angle);
        let inv = m.try_inverse().unwrap();
        let q = inv.transform_point(m.transform_point(p));
        assert!(vec_close(p, q, 1e-3), "p={p:?} q={q:?}");
    }
}

#[test]
fn quat_rotation_preserves_length() {
    let mut rng = Rng::seed_from_u64(0x05);
    for _ in 0..CASES {
        let axis = nonzero_vec3(&mut rng);
        let angle = rng.gen_range(-6.0f32..6.0);
        let v = vec3(&mut rng);
        let q = Quat::from_axis_angle(axis, angle);
        assert!((q.rotate(v).length() - v.length()).abs() < 1e-2 * (1.0 + v.length()));
    }
}

#[test]
fn quat_matrix_agreement() {
    let mut rng = Rng::seed_from_u64(0x06);
    for _ in 0..CASES {
        let axis = nonzero_vec3(&mut rng);
        let angle = rng.gen_range(-6.0f32..6.0);
        let v = vec3(&mut rng);
        let q = Quat::from_axis_angle(axis, angle);
        assert!(vec_close(q.rotate(v), q.to_mat4().transform_point(v), 1e-3));
    }
}

#[test]
fn aabb_union_contains_operands() {
    let mut rng = Rng::seed_from_u64(0x07);
    for _ in 0..CASES {
        let (a0, a1) = (vec3(&mut rng), vec3(&mut rng));
        let (b0, b1) = (vec3(&mut rng), vec3(&mut rng));
        let a = Aabb::new(a0.min(a1), a0.max(a1));
        let b = Aabb::new(b0.min(b1), b0.max(b1));
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
    }
}

#[test]
fn aabb_intersection_symmetric() {
    let mut rng = Rng::seed_from_u64(0x08);
    for _ in 0..CASES {
        let (a0, a1) = (vec3(&mut rng), vec3(&mut rng));
        let (b0, b1) = (vec3(&mut rng), vec3(&mut rng));
        let a = Aabb::new(a0.min(a1), a0.max(a1));
        let b = Aabb::new(b0.min(b1), b0.max(b1));
        assert_eq!(a.intersects(&b), b.intersects(&a));
    }
}

#[test]
fn aabb_transform_bounds_transformed_corners() {
    let mut rng = Rng::seed_from_u64(0x09);
    for _ in 0..CASES {
        let (c0, c1) = (vec3(&mut rng), vec3(&mut rng));
        let t = vec3(&mut rng);
        let axis = nonzero_vec3(&mut rng);
        let angle = rng.gen_range(-3.0f32..3.0);
        let bb = Aabb::new(c0.min(c1), c0.max(c1));
        let m = Mat4::translation(t) * Mat4::rotation_axis(axis, angle);
        let tbb = bb.transformed(&m).inflate(1e-2);
        for c in bb.corners() {
            assert!(tbb.contains_point(m.transform_point(c)));
        }
    }
}
