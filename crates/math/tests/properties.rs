//! Property-based tests for the math substrate.

use proptest::prelude::*;
use rbcd_math::{Aabb, Mat4, Quat, Vec3};

fn small_f32() -> impl Strategy<Value = f32> {
    -100.0f32..100.0f32
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (small_f32(), small_f32(), small_f32()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn nonzero_vec3() -> impl Strategy<Value = Vec3> {
    vec3().prop_filter("nonzero", |v| v.length() > 1e-3)
}

fn vec_close(a: Vec3, b: Vec3, eps: f32) -> bool {
    (a - b).length() <= eps * (1.0 + a.length().max(b.length()))
}

proptest! {
    #[test]
    fn dot_is_commutative(a in vec3(), b in vec3()) {
        prop_assert!((a.dot(b) - b.dot(a)).abs() < 1e-3);
    }

    #[test]
    fn cross_is_orthogonal(a in nonzero_vec3(), b in nonzero_vec3()) {
        let c = a.cross(b);
        // |a·(a×b)| is bounded by rounding relative to the magnitudes.
        let scale = a.length() * b.length() * a.length().max(b.length());
        prop_assert!(a.dot(c).abs() <= 1e-3 * scale.max(1.0));
        prop_assert!(b.dot(c).abs() <= 1e-3 * scale.max(1.0));
    }

    #[test]
    fn normalize_has_unit_length(v in nonzero_vec3()) {
        prop_assert!((v.normalize().length() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn matrix_inverse_roundtrips_points(
        t in vec3(),
        axis in nonzero_vec3(),
        angle in -3.0f32..3.0f32,
        p in vec3(),
    ) {
        let m = Mat4::translation(t) * Mat4::rotation_axis(axis, angle);
        let inv = m.try_inverse().unwrap();
        let q = inv.transform_point(m.transform_point(p));
        prop_assert!(vec_close(p, q, 1e-3), "p={p:?} q={q:?}");
    }

    #[test]
    fn quat_rotation_preserves_length(
        axis in nonzero_vec3(),
        angle in -6.0f32..6.0f32,
        v in vec3(),
    ) {
        let q = Quat::from_axis_angle(axis, angle);
        prop_assert!((q.rotate(v).length() - v.length()).abs() < 1e-2 * (1.0 + v.length()));
    }

    #[test]
    fn quat_matrix_agreement(
        axis in nonzero_vec3(),
        angle in -6.0f32..6.0f32,
        v in vec3(),
    ) {
        let q = Quat::from_axis_angle(axis, angle);
        prop_assert!(vec_close(q.rotate(v), q.to_mat4().transform_point(v), 1e-3));
    }

    #[test]
    fn aabb_union_contains_operands(a0 in vec3(), a1 in vec3(), b0 in vec3(), b1 in vec3()) {
        let a = Aabb::new(a0.min(a1), a0.max(a1));
        let b = Aabb::new(b0.min(b1), b0.max(b1));
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
    }

    #[test]
    fn aabb_intersection_symmetric(a0 in vec3(), a1 in vec3(), b0 in vec3(), b1 in vec3()) {
        let a = Aabb::new(a0.min(a1), a0.max(a1));
        let b = Aabb::new(b0.min(b1), b0.max(b1));
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn aabb_transform_bounds_transformed_corners(
        c0 in vec3(), c1 in vec3(),
        t in vec3(),
        axis in nonzero_vec3(),
        angle in -3.0f32..3.0f32,
    ) {
        let bb = Aabb::new(c0.min(c1), c0.max(c1));
        let m = Mat4::translation(t) * Mat4::rotation_axis(axis, angle);
        let tbb = bb.transformed(&m).inflate(1e-2);
        for c in bb.corners() {
            prop_assert!(tbb.contains_point(m.transform_point(c)));
        }
    }
}
