//! Rigid bodies.

use rbcd_geometry::Mesh;
use rbcd_math::{Aabb, Mat4, Quat, Vec3};
use std::sync::Arc;

/// A rigid body: a mesh plus kinematic state.
///
/// Rotational inertia is modelled as a solid sphere of the mesh's
/// bounding radius — adequate for the game-style scenes this workspace
/// animates (the paper does not evaluate response fidelity).
#[derive(Debug, Clone)]
pub struct RigidBody {
    /// Collision/render geometry (local space).
    pub mesh: Arc<Mesh>,
    /// World position of the local origin.
    pub position: Vec3,
    /// World orientation.
    pub orientation: Quat,
    /// Linear velocity, m/s.
    pub linear_velocity: Vec3,
    /// Angular velocity, rad/s.
    pub angular_velocity: Vec3,
    /// Inverse mass; `0` marks a static (immovable) body.
    pub inv_mass: f32,
    /// Bounciness in `[0, 1]`.
    pub restitution: f32,
    /// Local-space bounds, cached at construction.
    local_aabb: Aabb,
}

impl RigidBody {
    /// Creates a dynamic body of the given `mass` at `position`.
    ///
    /// # Panics
    ///
    /// Panics if `mass <= 0`; use [`RigidBody::fixed`] for static bodies.
    pub fn new(mesh: impl Into<Arc<Mesh>>, position: Vec3, mass: f32) -> Self {
        assert!(mass > 0.0, "dynamic body needs positive mass");
        let mesh = mesh.into();
        let local_aabb = mesh.aabb();
        Self {
            mesh,
            position,
            orientation: Quat::IDENTITY,
            linear_velocity: Vec3::ZERO,
            angular_velocity: Vec3::ZERO,
            inv_mass: 1.0 / mass,
            restitution: 0.3,
            local_aabb,
        }
    }

    /// Creates an immovable body.
    pub fn fixed(mesh: impl Into<Arc<Mesh>>, position: Vec3) -> Self {
        let mesh = mesh.into();
        let local_aabb = mesh.aabb();
        Self {
            mesh,
            position,
            orientation: Quat::IDENTITY,
            linear_velocity: Vec3::ZERO,
            angular_velocity: Vec3::ZERO,
            inv_mass: 0.0,
            restitution: 0.3,
            local_aabb,
        }
    }

    /// Sets the initial linear velocity (builder style).
    #[must_use]
    pub fn with_velocity(mut self, v: Vec3) -> Self {
        self.linear_velocity = v;
        self
    }

    /// Sets the restitution (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `e` is outside `[0, 1]`.
    #[must_use]
    pub fn with_restitution(mut self, e: f32) -> Self {
        assert!((0.0..=1.0).contains(&e), "restitution must be in [0, 1]");
        self.restitution = e;
        self
    }

    /// `true` for immovable bodies.
    pub fn is_static(&self) -> bool {
        self.inv_mass == 0.0
    }

    /// Model (local-to-world) transform.
    pub fn model(&self) -> Mat4 {
        Mat4::translation(self.position) * self.orientation.to_mat4()
    }

    /// World-space bounds.
    pub fn world_aabb(&self) -> Aabb {
        self.local_aabb.transformed(&self.model())
    }

    /// Radius of the bounding sphere around the local origin.
    pub fn bounding_radius(&self) -> f32 {
        let bb = self.local_aabb;
        bb.min.length().max(bb.max.length())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_geometry::shapes;

    #[test]
    fn dynamic_and_static_construction() {
        let b = RigidBody::new(shapes::cube(1.0), Vec3::new(0.0, 2.0, 0.0), 2.0);
        assert!(!b.is_static());
        assert_eq!(b.inv_mass, 0.5);
        let s = RigidBody::fixed(shapes::cube(1.0), Vec3::ZERO);
        assert!(s.is_static());
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn zero_mass_rejected() {
        let _ = RigidBody::new(shapes::cube(1.0), Vec3::ZERO, 0.0);
    }

    #[test]
    fn world_aabb_follows_position() {
        let b = RigidBody::new(shapes::cube(1.0), Vec3::new(5.0, 0.0, 0.0), 1.0);
        let bb = b.world_aabb();
        assert!((bb.center().x - 5.0).abs() < 1e-5);
    }

    #[test]
    fn bounding_radius_of_cube() {
        let b = RigidBody::new(shapes::cube(1.0), Vec3::ZERO, 1.0);
        assert!((b.bounding_radius() - 3f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn builders() {
        let b = RigidBody::new(shapes::cube(1.0), Vec3::ZERO, 1.0)
            .with_velocity(Vec3::X)
            .with_restitution(0.9);
        assert_eq!(b.linear_velocity, Vec3::X);
        assert_eq!(b.restitution, 0.9);
    }
}
