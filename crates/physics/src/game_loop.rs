//! The animation loop of §3.6 in both configurations (Figure 7).

use crate::world::PhysicsWorld;
use rbcd_cpu_cd::{CdBody, Cost, CpuCollisionDetector, Phase};
use rbcd_math::Mat4;

/// What one time step did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepReport {
    /// Colliding body-index pairs resolved this step.
    pub pairs: Vec<(usize, usize)>,
    /// CPU collision-detection cost, when CPU CD ran this step
    /// (`None` in the RBCD configuration — detection happened on the
    /// GPU during the previous render).
    pub cd_cost: Option<Cost>,
}

/// The conventional game loop (CPU CD inside the time step) and its
/// RBCD variant (pairs supplied by the GPU's previous render).
#[derive(Debug)]
pub struct GameLoop {
    /// Physics state.
    pub world: PhysicsWorld,
    detector: Option<CpuCollisionDetector>,
}

impl GameLoop {
    /// Creates a loop with CPU collision detection over the world's
    /// current bodies. Body `i` of the world becomes detector body `i`.
    ///
    /// # Errors
    ///
    /// Propagates hull-construction failures for degenerate meshes.
    pub fn with_cpu_cd(world: PhysicsWorld) -> Result<Self, rbcd_geometry::HullError> {
        let bodies = world
            .bodies()
            .iter()
            .enumerate()
            .map(|(i, b)| CdBody::from_mesh(i as u32, &b.mesh))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { world, detector: Some(CpuCollisionDetector::new(bodies)) })
    }

    /// Creates a loop that relies on externally supplied pairs (the
    /// RBCD configuration).
    pub fn with_external_cd(world: PhysicsWorld) -> Self {
        Self { world, detector: None }
    }

    /// Model matrices of all bodies, in body order — what the render
    /// stage consumes.
    pub fn models(&self) -> Vec<Mat4> {
        self.world.bodies().iter().map(|b| b.model()).collect()
    }

    /// One conventional time step: integrate, **detect on the CPU**,
    /// respond (Figure 7a).
    ///
    /// # Panics
    ///
    /// Panics if the loop was built with [`GameLoop::with_external_cd`].
    pub fn step_with_cpu_cd(&mut self, dt: f32, phase: Phase) -> StepReport {
        self.world.integrate(dt);
        self.world.resolve_ground_contacts();
        let detector = self
            .detector
            .as_mut()
            .expect("loop was built without a CPU detector");
        let transforms = self.world.bodies().iter().map(|b| b.model()).collect::<Vec<_>>();
        let result = detector.detect(&transforms, phase);
        let pairs: Vec<(usize, usize)> = result
            .pairs
            .iter()
            .map(|&(a, b)| (a as usize, b as usize))
            .collect();
        self.world.resolve_pairs(&pairs);
        StepReport { pairs, cd_cost: Some(result.cost) }
    }

    /// One RBCD time step: integrate and respond to the pairs the GPU
    /// reported during the previous frame's render (Figure 7b). The CPU
    /// does no detection work.
    pub fn step_with_reported_pairs(&mut self, dt: f32, pairs: &[(usize, usize)]) -> StepReport {
        self.world.integrate(dt);
        self.world.resolve_ground_contacts();
        self.world.resolve_pairs(pairs);
        StepReport { pairs: pairs.to_vec(), cd_cost: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::RigidBody;
    use rbcd_geometry::shapes;
    use rbcd_math::Vec3;

    fn two_ball_world() -> PhysicsWorld {
        let mut w = PhysicsWorld::new();
        w.gravity = Vec3::ZERO;
        w.add_body(
            RigidBody::new(shapes::icosphere(0.5, 1), Vec3::new(-1.0, 0.0, 0.0), 1.0)
                .with_velocity(Vec3::new(2.0, 0.0, 0.0)),
        );
        w.add_body(
            RigidBody::new(shapes::icosphere(0.5, 1), Vec3::new(1.0, 0.0, 0.0), 1.0)
                .with_velocity(Vec3::new(-2.0, 0.0, 0.0)),
        );
        w
    }

    #[test]
    fn cpu_loop_detects_and_responds() {
        let mut game = GameLoop::with_cpu_cd(two_ball_world()).unwrap();
        let mut collided = false;
        for _ in 0..120 {
            let r = game.step_with_cpu_cd(1.0 / 60.0, Phase::BroadAndNarrow);
            assert!(r.cd_cost.is_some());
            if !r.pairs.is_empty() {
                collided = true;
            }
        }
        assert!(collided, "balls on a collision course must collide");
        // After the elastic-ish response, the balls separate again.
        let (a, b) = (&game.world.bodies()[0], &game.world.bodies()[1]);
        assert!(a.linear_velocity.x < 0.0 && b.linear_velocity.x > 0.0);
    }

    #[test]
    fn external_loop_consumes_reported_pairs() {
        let mut game = GameLoop::with_external_cd(two_ball_world());
        // Bring them into AABB overlap (but not yet past each other).
        for _ in 0..20 {
            game.step_with_reported_pairs(1.0 / 60.0, &[]);
        }
        let before = game.world.bodies()[0].linear_velocity;
        let r = game.step_with_reported_pairs(1.0 / 60.0, &[(0, 1)]);
        assert!(r.cd_cost.is_none());
        let after = game.world.bodies()[0].linear_velocity;
        assert!(after.x < before.x, "impulse applied from reported pair");
    }

    #[test]
    #[should_panic(expected = "without a CPU detector")]
    fn cpu_step_requires_detector() {
        let mut game = GameLoop::with_external_cd(two_ball_world());
        let _ = game.step_with_cpu_cd(0.016, Phase::Broad);
    }

    #[test]
    fn models_match_bodies() {
        let game = GameLoop::with_external_cd(two_ball_world());
        let models = game.models();
        assert_eq!(models.len(), 2);
        assert!((models[0].transform_point(Vec3::ZERO).x + 1.0).abs() < 1e-5);
    }
}
