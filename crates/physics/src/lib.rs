//! Rigid-body dynamics and the animation (game) loop of §3.6.
//!
//! The application stage of a conventional graphics pipeline runs on the
//! CPU: receive input, **detect collisions**, compute responses, update
//! the scene — one *time step* — then issue GPU commands to render.
//! RBCD moves the collision-detection box out of the time step and into
//! the GPU render (the paper's Figure 7); the response still runs on the
//! CPU using the contact pairs the GPU reported.
//!
//! This crate provides:
//!
//! * [`RigidBody`] / [`PhysicsWorld`] — semi-implicit Euler integration,
//!   impulse-based collision response with positional correction, and an
//!   optional ground plane;
//! * [`GameLoop`] — the §3.6 loop in both configurations:
//!   [`GameLoop::step_with_cpu_cd`] runs the conventional
//!   CPU broad(+narrow) detection inside the time step, while
//!   [`GameLoop::step_with_reported_pairs`] consumes pairs produced by
//!   an external detector (the RBCD unit attached to the previous
//!   frame's render).
//!
//! # Example
//!
//! ```
//! use rbcd_physics::{PhysicsWorld, RigidBody};
//! use rbcd_geometry::shapes;
//! use rbcd_math::Vec3;
//!
//! let mut world = PhysicsWorld::with_ground(0.0);
//! world.add_body(RigidBody::new(shapes::cube(0.5), Vec3::new(0.0, 5.0, 0.0), 1.0));
//! for _ in 0..240 {
//!     world.integrate(1.0 / 60.0);
//!     world.resolve_ground_contacts();
//! }
//! // The cube has fallen and come to rest on the ground plane.
//! assert!(world.bodies()[0].position.y < 0.75);
//! assert!(world.bodies()[0].position.y > 0.2);
//! ```

#![warn(missing_docs)]

mod body;
mod game_loop;
mod world;

pub use body::RigidBody;
pub use game_loop::{GameLoop, StepReport};
pub use world::PhysicsWorld;
