//! The physics world: integration and impulse-based contact response.

use crate::body::RigidBody;
use rbcd_math::Vec3;

/// A collection of rigid bodies under gravity with impulse-based
/// collision response.
#[derive(Debug, Clone)]
pub struct PhysicsWorld {
    bodies: Vec<RigidBody>,
    /// Gravitational acceleration.
    pub gravity: Vec3,
    /// Height of an infinite ground plane (`y = ground`), if any.
    pub ground: Option<f32>,
    /// Fraction of penetration corrected per resolution pass.
    pub correction: f32,
}

impl Default for PhysicsWorld {
    fn default() -> Self {
        Self::new()
    }
}

impl PhysicsWorld {
    /// An empty world with Earth gravity and no ground plane.
    pub fn new() -> Self {
        Self {
            bodies: Vec::new(),
            gravity: Vec3::new(0.0, -9.81, 0.0),
            ground: None,
            correction: 0.6,
        }
    }

    /// An empty world with a ground plane at `y`.
    pub fn with_ground(y: f32) -> Self {
        Self { ground: Some(y), ..Self::new() }
    }

    /// Adds a body, returning its index.
    pub fn add_body(&mut self, body: RigidBody) -> usize {
        self.bodies.push(body);
        self.bodies.len() - 1
    }

    /// The bodies, in insertion order.
    pub fn bodies(&self) -> &[RigidBody] {
        &self.bodies
    }

    /// Mutable access to the bodies.
    pub fn bodies_mut(&mut self) -> &mut [RigidBody] {
        &mut self.bodies
    }

    /// Semi-implicit Euler step: gravity → velocity → position.
    pub fn integrate(&mut self, dt: f32) {
        for b in &mut self.bodies {
            if b.is_static() {
                continue;
            }
            b.linear_velocity += self.gravity * dt;
            b.position += b.linear_velocity * dt;
            b.orientation = b.orientation.integrate(b.angular_velocity, dt);
        }
    }

    /// Resolves one contact between bodies `i` and `j` with an impulse
    /// along the centroid axis plus positional correction, using the
    /// overlap of their world AABBs as the penetration estimate.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn resolve_pair(&mut self, i: usize, j: usize) {
        assert_ne!(i, j, "cannot resolve a body against itself");
        let (a, b) = if i < j {
            let (lo, hi) = self.bodies.split_at_mut(j);
            (&mut lo[i], &mut hi[0])
        } else {
            let (lo, hi) = self.bodies.split_at_mut(i);
            (&mut hi[0], &mut lo[j])
        };
        let inv_sum = a.inv_mass + b.inv_mass;
        if inv_sum == 0.0 {
            return; // two static bodies
        }
        let normal = (b.position - a.position)
            .try_normalize()
            .unwrap_or(Vec3::Y);
        // Penetration along the minimal-overlap axis of the AABBs.
        let (ba, bb) = (a.world_aabb(), b.world_aabb());
        if !ba.intersects(&bb) {
            return;
        }
        let overlap = Vec3::new(
            (ba.max.x.min(bb.max.x) - ba.min.x.max(bb.min.x)).max(0.0),
            (ba.max.y.min(bb.max.y) - ba.min.y.max(bb.min.y)).max(0.0),
            (ba.max.z.min(bb.max.z) - ba.min.z.max(bb.min.z)).max(0.0),
        );
        let depth = overlap.min_element();

        // Impulse from the closing velocity along the contact normal.
        let rel = b.linear_velocity - a.linear_velocity;
        let closing = rel.dot(normal);
        if closing < 0.0 {
            let e = a.restitution.min(b.restitution);
            let impulse = -(1.0 + e) * closing / inv_sum;
            a.linear_velocity -= normal * impulse * a.inv_mass;
            b.linear_velocity += normal * impulse * b.inv_mass;
        }
        // Positional correction pushes the bodies apart.
        let push = normal * (depth * self.correction / inv_sum);
        a.position -= push * a.inv_mass;
        b.position += push * b.inv_mass;
    }

    /// Resolves every reported pair.
    pub fn resolve_pairs(&mut self, pairs: &[(usize, usize)]) {
        for &(i, j) in pairs {
            self.resolve_pair(i, j);
        }
    }

    /// Collides dynamic bodies against the ground plane, if configured.
    pub fn resolve_ground_contacts(&mut self) {
        let Some(ground) = self.ground else {
            return;
        };
        for b in &mut self.bodies {
            if b.is_static() {
                continue;
            }
            let bb = b.world_aabb();
            let depth = ground - bb.min.y;
            if depth > 0.0 {
                b.position.y += depth;
                if b.linear_velocity.y < 0.0 {
                    b.linear_velocity.y = -b.linear_velocity.y * b.restitution;
                    // Crude rolling friction on the tangent plane.
                    b.linear_velocity.x *= 0.98;
                    b.linear_velocity.z *= 0.98;
                    // Kill micro-bounces so bodies come to rest.
                    if b.linear_velocity.y.abs() < 0.5 {
                        b.linear_velocity.y = 0.0;
                    }
                }
            }
        }
    }

    /// Total kinetic energy (translational), for conservation tests.
    pub fn kinetic_energy(&self) -> f32 {
        self.bodies
            .iter()
            .filter(|b| !b.is_static())
            .map(|b| 0.5 / b.inv_mass * b.linear_velocity.length_squared())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_geometry::shapes;

    fn ball(x: f32, vx: f32) -> RigidBody {
        RigidBody::new(shapes::icosphere(0.5, 1), Vec3::new(x, 0.0, 0.0), 1.0)
            .with_velocity(Vec3::new(vx, 0.0, 0.0))
            .with_restitution(1.0)
    }

    #[test]
    fn gravity_accelerates_falling_body() {
        let mut w = PhysicsWorld::new();
        w.add_body(RigidBody::new(shapes::cube(0.5), Vec3::new(0.0, 10.0, 0.0), 1.0));
        w.integrate(1.0);
        let b = &w.bodies()[0];
        assert!((b.linear_velocity.y + 9.81).abs() < 1e-4);
        assert!(b.position.y < 10.0);
    }

    #[test]
    fn static_bodies_do_not_move() {
        let mut w = PhysicsWorld::new();
        w.add_body(RigidBody::fixed(shapes::cube(1.0), Vec3::ZERO));
        w.integrate(1.0);
        assert_eq!(w.bodies()[0].position, Vec3::ZERO);
    }

    #[test]
    fn head_on_elastic_collision_exchanges_velocities() {
        let mut w = PhysicsWorld::new();
        w.gravity = Vec3::ZERO;
        let i = w.add_body(ball(-0.4, 1.0));
        let j = w.add_body(ball(0.4, -1.0));
        w.resolve_pair(i, j);
        let (a, b) = (&w.bodies()[0], &w.bodies()[1]);
        // Equal masses, e = 1: velocities swap along the normal.
        assert!((a.linear_velocity.x + 1.0).abs() < 1e-4);
        assert!((b.linear_velocity.x - 1.0).abs() < 1e-4);
    }

    #[test]
    fn separating_bodies_get_no_impulse() {
        let mut w = PhysicsWorld::new();
        w.gravity = Vec3::ZERO;
        let i = w.add_body(ball(-0.4, -1.0));
        let j = w.add_body(ball(0.4, 1.0));
        w.resolve_pair(i, j);
        // Moving apart: velocities unchanged (but positions corrected).
        assert!((w.bodies()[0].linear_velocity.x + 1.0).abs() < 1e-4);
        assert!((w.bodies()[1].linear_velocity.x - 1.0).abs() < 1e-4);
    }

    #[test]
    fn positional_correction_separates_overlap() {
        let mut w = PhysicsWorld::new();
        w.gravity = Vec3::ZERO;
        let i = w.add_body(ball(-0.3, 0.0));
        let j = w.add_body(ball(0.3, 0.0));
        let before = w.bodies()[1].position.x - w.bodies()[0].position.x;
        w.resolve_pair(i, j);
        let after = w.bodies()[1].position.x - w.bodies()[0].position.x;
        assert!(after > before);
    }

    #[test]
    fn collision_against_static_body_reflects() {
        let mut w = PhysicsWorld::new();
        w.gravity = Vec3::ZERO;
        let i = w.add_body(ball(-0.4, 1.0));
        let wall = RigidBody::fixed(shapes::cube(0.5), Vec3::new(0.4, 0.0, 0.0));
        let j = w.add_body(wall);
        w.resolve_pair(i, j);
        assert!(w.bodies()[0].linear_velocity.x < 0.0, "bounced back");
        assert_eq!(w.bodies()[1].position, Vec3::new(0.4, 0.0, 0.0));
    }

    #[test]
    fn ground_stops_falling_bodies() {
        let mut w = PhysicsWorld::with_ground(0.0);
        w.add_body(
            RigidBody::new(shapes::cube(0.5), Vec3::new(0.0, 3.0, 0.0), 1.0)
                .with_restitution(0.0),
        );
        for _ in 0..300 {
            w.integrate(1.0 / 60.0);
            w.resolve_ground_contacts();
        }
        let b = &w.bodies()[0];
        assert!((b.position.y - 0.5).abs() < 0.05, "resting on ground, y = {}", b.position.y);
        assert!(b.linear_velocity.length() < 0.1);
    }

    #[test]
    fn elastic_collision_conserves_kinetic_energy() {
        let mut w = PhysicsWorld::new();
        w.gravity = Vec3::ZERO;
        w.correction = 0.0; // isolate the impulse
        let i = w.add_body(ball(-0.4, 2.0));
        let j = w.add_body(ball(0.4, -0.5));
        let e0 = w.kinetic_energy();
        w.resolve_pair(i, j);
        let e1 = w.kinetic_energy();
        assert!((e0 - e1).abs() / e0 < 1e-4);
    }
}
