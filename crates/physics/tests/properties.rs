//! Randomized property tests for the physics world, driven by the
//! workspace's seeded [`Rng`] (no external frameworks; offline build).

use rbcd_geometry::shapes;
use rbcd_math::{Rng, Vec3};
use rbcd_physics::{PhysicsWorld, RigidBody};

const CASES: usize = 64;

fn vel(rng: &mut Rng) -> Vec3 {
    Vec3::new(
        rng.gen_range(-5.0f32..5.0),
        rng.gen_range(-5.0f32..5.0),
        rng.gen_range(-5.0f32..5.0),
    )
}

/// Impulse resolution conserves linear momentum for dynamic pairs.
#[test]
fn impulse_conserves_momentum() {
    let mut rng = Rng::seed_from_u64(0x11);
    for _ in 0..CASES {
        let (va, vb) = (vel(&mut rng), vel(&mut rng));
        let ma = rng.gen_range(0.5f32..4.0);
        let mb = rng.gen_range(0.5f32..4.0);
        let mut w = PhysicsWorld::new();
        w.gravity = Vec3::ZERO;
        w.correction = 0.0;
        let i = w.add_body(
            RigidBody::new(shapes::icosphere(0.5, 1), Vec3::new(-0.4, 0.0, 0.0), ma)
                .with_velocity(va),
        );
        let j = w.add_body(
            RigidBody::new(shapes::icosphere(0.5, 1), Vec3::new(0.4, 0.0, 0.0), mb)
                .with_velocity(vb),
        );
        let p_before = va * ma + vb * mb;
        w.resolve_pair(i, j);
        let (a, b) = (&w.bodies()[0], &w.bodies()[1]);
        let p_after = a.linear_velocity * ma + b.linear_velocity * mb;
        assert!((p_before - p_after).length() < 1e-3 * (1.0 + p_before.length()));
    }
}

/// Kinetic energy never increases through a contact (restitution ≤ 1).
#[test]
fn impulse_never_creates_energy() {
    let mut rng = Rng::seed_from_u64(0x12);
    for _ in 0..CASES {
        let (va, vb) = (vel(&mut rng), vel(&mut rng));
        let e = rng.gen_range(0.0f32..1.0);
        let mut w = PhysicsWorld::new();
        w.gravity = Vec3::ZERO;
        w.correction = 0.0;
        let i = w.add_body(
            RigidBody::new(shapes::icosphere(0.5, 1), Vec3::new(-0.4, 0.0, 0.0), 1.0)
                .with_velocity(va)
                .with_restitution(e),
        );
        let j = w.add_body(
            RigidBody::new(shapes::icosphere(0.5, 1), Vec3::new(0.4, 0.0, 0.0), 1.0)
                .with_velocity(vb)
                .with_restitution(e),
        );
        let ke_before = w.kinetic_energy();
        w.resolve_pair(i, j);
        assert!(w.kinetic_energy() <= ke_before * (1.0 + 1e-4) + 1e-5);
    }
}

/// Integration with zero gravity moves bodies linearly.
#[test]
fn zero_gravity_integration_is_linear() {
    let mut rng = Rng::seed_from_u64(0x13);
    for _ in 0..CASES {
        let v = vel(&mut rng);
        let dt = rng.gen_range(0.001f32..0.05);
        let mut w = PhysicsWorld::new();
        w.gravity = Vec3::ZERO;
        w.add_body(RigidBody::new(shapes::cube(0.3), Vec3::ZERO, 1.0).with_velocity(v));
        for _ in 0..10 {
            w.integrate(dt);
        }
        let expect = v * (dt * 10.0);
        let got = w.bodies()[0].position;
        assert!((got - expect).length() < 1e-3 * (1.0 + expect.length()));
    }
}

/// Bodies dropped on the ground never sink below it (after resolution)
/// and eventually stop gaining energy.
#[test]
fn ground_is_impenetrable() {
    let mut rng = Rng::seed_from_u64(0x14);
    // The inner loop runs 2400 steps, so keep the case count modest.
    for _ in 0..16 {
        let h = rng.gen_range(1.0f32..6.0);
        let e = rng.gen_range(0.0f32..0.8);
        let mut w = PhysicsWorld::with_ground(0.0);
        w.add_body(
            RigidBody::new(shapes::cube(0.4), Vec3::new(0.0, h, 0.0), 1.0).with_restitution(e),
        );
        // Long enough for a bouncy body (e ≈ 0.8) to damp out.
        for _ in 0..2400 {
            w.integrate(1.0 / 120.0);
            w.resolve_ground_contacts();
            let bb = w.bodies()[0].world_aabb();
            assert!(bb.min.y >= -1e-3, "sank to {}", bb.min.y);
        }
        // Settled: below the drop height, moving slowly.
        let b = &w.bodies()[0];
        assert!(b.position.y < h + 0.5);
        assert!(b.linear_velocity.length() < 2.5, "still moving at {}", b.linear_velocity);
    }
}
