//! One front door for the RBCD reproduction.
//!
//! The workspace's functionality is spread across focused crates —
//! `rbcd-gpu` (the Mali-400-style TBR simulator), `rbcd-core` (the RBCD
//! unit and the multi-session scheduler), `rbcd-geometry`, `rbcd-math`,
//! `rbcd-trace` — which keeps dependency edges honest but makes a
//! first-time caller import from five places. This crate is the facade:
//! `use rbcd::prelude::*;` brings the whole public surface into scope,
//! and the underlying crates stay reachable as [`gpu`], [`core`],
//! [`geometry`], [`math`], and [`trace`].
//!
//! # Quickstart: submit sessions, don't build simulators
//!
//! ```
//! use rbcd::prelude::*;
//!
//! // A two-frame motion clip of two touching cubes.
//! let camera = Camera::perspective(Vec3::new(0.0, 0.0, 6.0), Vec3::ZERO, 1.0, 0.1, 100.0);
//! let frame = FrameTrace::new(
//!     camera,
//!     vec![
//!         DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1)),
//!         DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(2))
//!             .with_model(Mat4::translation(Vec3::new(0.8, 0.0, 0.0))),
//!     ],
//! );
//!
//! // Execution knobs travel as one typed FramePolicy.
//! let policy = FramePolicy::new().with_reuse(true);
//! let gpu = GpuConfig { viewport: Viewport::new(96, 96), ..GpuConfig::default() };
//!
//! // Submit to the scheduler; it serves every admitted session over
//! // one shared worker pool, bit-identically to running each solo.
//! let mut sched = Scheduler::new(2, 4);
//! let id = sched
//!     .submit(SessionSpec::new("cubes", vec![frame; 2]).with_gpu(gpu).with_policy(policy))
//!     .expect("queue has room");
//! let reports = sched.run().expect("no worker panics");
//! assert!(reports[id.index()].pairs().contains(&(ObjectId::new(1), ObjectId::new(2))));
//! ```

#![warn(missing_docs)]

pub use rbcd_core as core;
pub use rbcd_geometry as geometry;
pub use rbcd_gpu as gpu;
pub use rbcd_math as math;
pub use rbcd_trace as trace;

/// Everything a typical caller needs, importable in one line.
pub mod prelude {
    pub use rbcd_core::faults::{FaultLog, FaultPlan};
    pub use rbcd_core::sched::{
        AdmissionError, Ledger, Scheduler, SessionId, SessionReport, SessionSpec,
    };
    pub use rbcd_core::{
        detect_frame_collisions, ContactPoint, FrameCollisions, ObjectPair, RbcdConfig, RbcdError,
        RbcdStats, RbcdUnit,
    };
    pub use rbcd_geometry::shapes;
    pub use rbcd_gpu::{
        render_batch, BatchJob, Camera, DrawCommand, FramePolicy, FrameStats, FrameTrace,
        GovernorConfig, GpuConfig, GpuConfigError, HotPathMode, ObjectId, ParallelCollision,
        PipelineMode, ServiceError, Simulator, SimulatorBuilder,
    };
    pub use rbcd_math::{Mat4, Vec3, Viewport};
    pub use rbcd_trace::{CounterScopes, CounterSet, TraceBuffer};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_covers_the_session_surface() {
        use crate::prelude::*;
        // Construction-only smoke: the facade must expose enough to
        // write the quickstart without touching sub-crates.
        let policy = FramePolicy::new().with_workers(2).with_reuse(true);
        let sched = Scheduler::new(policy.workers, 4);
        assert_eq!(sched.queued(), 0);
        assert!(sched.ledger().leak_free());
    }
}
