//! The typed counter registry.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered registry of activity counters with stable string keys.
///
/// Keys use a dotted `subsystem.counter` convention
/// (`"geometry.vertices_shaded"`, `"rbcd.overflows"`, …) and are
/// `&'static str` by design: every key is declared once at the
/// producing subsystem and pinned by the golden-counter test, so a
/// renamed or dropped counter is an API break, not a silent drift.
///
/// The map is a `BTreeMap`, so iteration order — and therefore every
/// rendered report and serialized snapshot — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    entries: BTreeMap<&'static str, u64>,
}

impl CounterSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `key` to `value`, replacing any previous value.
    pub fn set(&mut self, key: &'static str, value: u64) -> &mut Self {
        self.entries.insert(key, value);
        self
    }

    /// Adds `amount` to `key` (starting from 0 if absent).
    pub fn add(&mut self, key: &'static str, amount: u64) -> &mut Self {
        *self.entries.entry(key).or_insert(0) += amount;
        self
    }

    /// The value of `key`, or 0 when the counter was never recorded.
    pub fn get(&self, key: &str) -> u64 {
        self.entries.get(key).copied().unwrap_or(0)
    }

    /// Whether `key` was recorded at all (even with value 0).
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of recorded counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no counter was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All keys, in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.keys().copied()
    }

    /// `(key, value)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges `other` into `self`, summing values key-wise — the
    /// accumulation used when folding per-frame snapshots into a run
    /// total.
    pub fn accumulate(&mut self, other: &CounterSet) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// The per-interval delta `self − earlier`, saturating at 0 — the
    /// snapshot/delta idiom: snapshot the registry before an interval,
    /// snapshot after, and `after.delta(&before)` is the interval's
    /// activity. Keys present in only one snapshot are kept (missing
    /// side reads as 0).
    pub fn delta(&self, earlier: &CounterSet) -> CounterSet {
        let mut out = CounterSet::new();
        for (k, v) in self.iter() {
            out.set(k, v.saturating_sub(earlier.get(k)));
        }
        for (k, _) in earlier.iter() {
            if !self.contains(k) {
                out.set(k, 0);
            }
        }
        out
    }

    /// Renders the registry as a JSON object with sorted keys.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{k}\": {v}"));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

impl FromIterator<(&'static str, u64)> for CounterSet {
    fn from_iter<T: IntoIterator<Item = (&'static str, u64)>>(iter: T) -> Self {
        let mut set = CounterSet::new();
        for (k, v) in iter {
            set.set(k, v);
        }
        set
    }
}

/// Per-scope counter namespacing: one [`CounterSet`] per named scope
/// (a session, a worker, a subsystem instance), so N concurrent
/// sessions report through one registry without key collisions.
///
/// Scope names are owned `String`s — unlike [`CounterSet`] keys they
/// are data (session names arrive at runtime), not API. The map is a
/// `BTreeMap`, so scope iteration — and every rendered report — is
/// deterministic in scope-name order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterScopes {
    scopes: BTreeMap<String, CounterSet>,
}

impl CounterScopes {
    /// An empty registry with no scopes.
    pub fn new() -> Self {
        Self::default()
    }

    /// The mutable counter set for `scope`, created empty on first use.
    pub fn scope(&mut self, scope: &str) -> &mut CounterSet {
        self.scopes.entry(scope.to_owned()).or_default()
    }

    /// The counter set recorded under `scope`, if any.
    pub fn get(&self, scope: &str) -> Option<&CounterSet> {
        self.scopes.get(scope)
    }

    /// Number of scopes.
    pub fn len(&self) -> usize {
        self.scopes.len()
    }

    /// True when no scope was recorded.
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    /// `(scope, counters)` pairs in sorted scope-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CounterSet)> + '_ {
        self.scopes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Key-wise sum across every scope — the fleet-wide totals view.
    pub fn totals(&self) -> CounterSet {
        let mut out = CounterSet::new();
        for set in self.scopes.values() {
            out.accumulate(set);
        }
        out
    }

    /// Flattens to `("scope.key", value)` pairs in sorted order — the
    /// form flat metric sinks (CSV columns, dashboards) consume.
    pub fn flat(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (scope, set) in self.iter() {
            for (k, v) in set.iter() {
                out.push((format!("{scope}.{k}"), v));
            }
        }
        out
    }

    /// Renders the registry as a nested JSON object
    /// (`{"scope": {"key": value, …}, …}`) with sorted keys.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (scope, set)) in self.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{scope}\": {}", set.to_json()));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for CounterScopes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.flat() {
            writeln!(f, "{name} = {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_default_zero() {
        let mut c = CounterSet::new();
        c.set("a.x", 3).set("a.y", 0);
        assert_eq!(c.get("a.x"), 3);
        assert_eq!(c.get("a.y"), 0);
        assert_eq!(c.get("missing"), 0);
        assert!(c.contains("a.y"));
        assert!(!c.contains("missing"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn delta_is_saturating_and_keeps_all_keys() {
        let before: CounterSet = [("a", 5u64), ("gone", 7)].into_iter().collect();
        let after: CounterSet = [("a", 9u64), ("new", 2)].into_iter().collect();
        let d = after.delta(&before);
        assert_eq!(d.get("a"), 4);
        assert_eq!(d.get("new"), 2);
        assert_eq!(d.get("gone"), 0);
        assert!(d.contains("gone"));
    }

    #[test]
    fn accumulate_sums_keywise() {
        let mut total = CounterSet::new();
        let frame: CounterSet = [("x", 2u64), ("y", 3)].into_iter().collect();
        total.accumulate(&frame);
        total.accumulate(&frame);
        assert_eq!(total.get("x"), 4);
        assert_eq!(total.get("y"), 6);
    }

    #[test]
    fn iteration_and_json_are_key_sorted() {
        let c: CounterSet = [("z.last", 1u64), ("a.first", 2)].into_iter().collect();
        let keys: Vec<_> = c.keys().collect();
        assert_eq!(keys, ["a.first", "z.last"]);
        assert_eq!(c.to_json(), "{\"a.first\": 2, \"z.last\": 1}");
    }

    #[test]
    fn scopes_isolate_sessions_and_total_across_them() {
        let mut s = CounterScopes::new();
        s.scope("cap-0").add("rbcd.pairs", 3);
        s.scope("temple-1").add("rbcd.pairs", 4).add("rbcd.overflows", 1);
        s.scope("cap-0").add("rbcd.pairs", 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("cap-0").map(|c| c.get("rbcd.pairs")), Some(5));
        assert_eq!(s.get("temple-1").map(|c| c.get("rbcd.pairs")), Some(4));
        assert!(s.get("missing").is_none());
        let totals = s.totals();
        assert_eq!(totals.get("rbcd.pairs"), 9);
        assert_eq!(totals.get("rbcd.overflows"), 1);
    }

    #[test]
    fn scopes_flatten_and_render_deterministically() {
        let mut s = CounterScopes::new();
        s.scope("b").set("k", 2);
        s.scope("a").set("k", 1);
        let flat = s.flat();
        assert_eq!(flat, vec![("a.k".to_owned(), 1), ("b.k".to_owned(), 2)]);
        assert_eq!(s.to_json(), "{\"a\": {\"k\": 1}, \"b\": {\"k\": 2}}");
    }
}
