//! Structured trace events on the simulated cycle timeline.

use crate::heatmap::HeatGrid;

/// How an event occupies the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span with a duration (Chrome phase `"X"`).
    Span {
        /// Duration in simulated cycles.
        dur: u64,
    },
    /// A zero-width marker (Chrome phase `"i"`).
    Instant,
    /// A sampled counter value (Chrome phase `"C"`).
    Counter,
}

/// One structured event. Timestamps are *simulated GPU cycles* from the
/// start of the trace — never wall-clock — so traces are bit-identical
/// across host thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (stable taxonomy: `frame`, `geometry`, `draw`,
    /// `tile`, `zeb.insert`, `zeb.scan`, `zeb.overflow`, `ladder.rung`,
    /// `rbcd` for counters).
    pub name: &'static str,
    /// Category, used by trace viewers for filtering.
    pub cat: &'static str,
    /// Start cycle on the trace timeline.
    pub ts: u64,
    /// Display lane (Chrome `tid`): 0 frame, 1 geometry, 2 raster
    /// tiles, 3 ZEB insertion, 4 ZEB scan, 5 markers/counters.
    pub tid: u32,
    /// Span / instant / counter.
    pub kind: EventKind,
    /// Event arguments, in emission order.
    pub args: Vec<(&'static str, u64)>,
}

/// Everything the RBCD unit observed about one tile, on the raster
/// timeline of its frame. Produced by the collision unit per finished
/// tile (in deterministic tile-merge order) and folded into the trace
/// by [`TraceBuffer::record_zeb_tile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileZebRecord {
    /// Tile column.
    pub tile_x: u32,
    /// Tile row.
    pub tile_y: u32,
    /// Cycle the tile was dispatched (ZEB claimed).
    pub start: u64,
    /// Cycle rasterization (and ZEB insertion) finished.
    pub end: u64,
    /// Cycle the Z-overlap scan started (after scan-unit serialization).
    pub scan_start: u64,
    /// Cycle the Z-overlap scan finished (ZEB released).
    pub scan_end: u64,
    /// Fragments inserted into the tile's ZEB.
    pub insertions: u64,
    /// Insertions that found their pixel list full.
    pub overflows: u64,
    /// Overflowing insertions absorbed by the spare pool.
    pub spare_allocations: u64,
    /// Elements traversed by the scan — the tile's ZEB occupancy.
    pub occupancy: u64,
    /// Colliding pairs emitted by the tile's scan.
    pub pairs_emitted: u64,
    /// Front-face pushes dropped by a full FF-Stack.
    pub ff_drops: u64,
    /// Occupied lists skipped analytically by the mask hot path
    /// (0 under `HotPathMode::Reference`).
    pub scan_skipped: u64,
    /// Degradation-ladder rung the tile landed on (0 clean, 1 spare,
    /// 2 re-scan, 3 CPU escalation).
    pub rung: u8,
}

/// Lane ids, named for readability at the emission sites.
const LANE_FRAME: u32 = 0;
const LANE_GEOMETRY: u32 = 1;
const LANE_TILE: u32 = 2;
const LANE_ZEB_INSERT: u32 = 3;
const LANE_ZEB_SCAN: u32 = 4;
const LANE_MARKS: u32 = 5;

/// Records structured events and per-tile heat for one simulation run.
///
/// Frames are laid end to end on a single global timeline: the producer
/// calls [`begin_frame`](Self::begin_frame), then
/// [`geometry_done`](Self::geometry_done) once geometry cycles are
/// known, then any number of tile/ZEB records (raster-timeline cycles
/// are offset automatically), then [`end_frame`](Self::end_frame).
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    heat: HeatGrid,
    frames: u64,
    /// Trace-timeline cycle where the current frame starts.
    frame_base: u64,
    /// `frame_base` + the current frame's geometry cycles: the origin
    /// of the frame's raster timeline.
    raster_base: u64,
    /// Where the next frame will start.
    next_base: u64,
    cum_overflows: u64,
    cum_pairs: u64,
}

impl TraceBuffer {
    /// Creates a buffer for a `tiles_x` × `tiles_y` tile grid.
    pub fn new(tiles_x: u32, tiles_y: u32) -> Self {
        Self { heat: HeatGrid::new(tiles_x, tiles_y), ..Self::default() }
    }

    /// Starts the next frame on the global timeline.
    pub fn begin_frame(&mut self) {
        self.frame_base = self.next_base;
        self.raster_base = self.next_base;
    }

    /// Closes the geometry phase: emits its span and anchors the
    /// frame's raster timeline right after it.
    pub fn geometry_done(&mut self, cycles: u64) {
        self.raster_base = self.frame_base + cycles;
        self.events.push(TraceEvent {
            name: "geometry",
            cat: "gpu",
            ts: self.frame_base,
            tid: LANE_GEOMETRY,
            kind: EventKind::Span { dur: cycles },
            args: vec![("cycles", cycles)],
        });
    }

    /// Records one draw command observed by the geometry pipeline.
    /// `at` is a monotonic pseudo-cycle within the geometry phase
    /// (per-draw timing is not modelled below phase granularity).
    pub fn record_draw(&mut self, index: u64, vertices: u64, triangles: u64, at: u64) {
        self.events.push(TraceEvent {
            name: "draw",
            cat: "gpu",
            ts: self.frame_base + at,
            tid: LANE_GEOMETRY,
            kind: EventKind::Instant,
            args: vec![("draw", index), ("vertices", vertices), ("triangles", triangles)],
        });
    }

    /// Records one rasterized tile: `start`/`end` are raster-timeline
    /// cycles; `frags` the fragments it produced.
    pub fn record_tile_raster(&mut self, x: u32, y: u32, start: u64, end: u64, frags: u64) {
        self.events.push(TraceEvent {
            name: "tile",
            cat: "gpu",
            ts: self.raster_base + start,
            tid: LANE_TILE,
            kind: EventKind::Span { dur: end.saturating_sub(start) },
            args: vec![("x", x as u64), ("y", y as u64), ("fragments", frags)],
        });
    }

    /// Records a temporal-coherence replay of tile (`x`, `y`): an
    /// instant marker at the signature-check cycle plus the per-tile
    /// reuse heat plane. `at` is a raster-timeline cycle.
    pub fn record_tile_reuse(&mut self, x: u32, y: u32, at: u64) {
        self.events.push(TraceEvent {
            name: "tile.reuse",
            cat: "coherence",
            ts: self.raster_base + at,
            tid: LANE_MARKS,
            kind: EventKind::Instant,
            args: vec![("x", x as u64), ("y", y as u64)],
        });
        self.heat.add_reuse(x, y);
    }

    /// Records a screen-space broad-phase skip of tile (`x`, `y`): the
    /// frame's interval sweep proved no feasible collision pair can
    /// touch the tile, so raster and the Z-overlap scan were elided.
    /// An instant marker at the cycle the merge reached the tile plus
    /// the per-tile broadphase heat plane. `at` is a raster-timeline
    /// cycle.
    pub fn record_tile_bp_skip(&mut self, x: u32, y: u32, at: u64) {
        self.events.push(TraceEvent {
            name: "tile.bp_skipped",
            cat: "broadphase",
            ts: self.raster_base + at,
            tid: LANE_MARKS,
            kind: EventKind::Instant,
            args: vec![("x", x as u64), ("y", y as u64)],
        });
        self.heat.add_broadphase(x, y);
    }

    /// Records an overload-governor shed of tile (`x`, `y`): an instant
    /// marker at the cycle the Tile Scheduler dropped it plus the
    /// per-tile shed heat plane. `at` is a raster-timeline cycle.
    pub fn record_tile_shed(&mut self, x: u32, y: u32, at: u64) {
        self.events.push(TraceEvent {
            name: "tile.shed",
            cat: "governor",
            ts: self.raster_base + at,
            tid: LANE_MARKS,
            kind: EventKind::Instant,
            args: vec![("x", x as u64), ("y", y as u64)],
        });
        self.heat.add_shed(x, y);
    }

    /// Records one bin entry the incremental geometry front-end spliced
    /// into tile (`x`, `y`) from its per-draw cache. Heat-plane only —
    /// deliberately **no** timeline event, so the event stream stays
    /// bit-identical between the incremental and rebuild front-ends
    /// (splicing is a host-side shortcut, not a simulated occurrence).
    pub fn record_bin_splice(&mut self, x: u32, y: u32) {
        self.heat.add_splice(x, y);
    }

    /// Folds one tile's RBCD-unit observations into the trace: insert
    /// and scan spans, overflow / ladder-rung markers, cumulative
    /// counter samples, and the per-tile heat grid.
    pub fn record_zeb_tile(&mut self, rec: &TileZebRecord) {
        let tile_args =
            |extra: &mut Vec<(&'static str, u64)>| {
                extra.insert(0, ("x", rec.tile_x as u64));
                extra.insert(1, ("y", rec.tile_y as u64));
            };
        if rec.insertions > 0 {
            let mut args = vec![("insertions", rec.insertions)];
            tile_args(&mut args);
            self.events.push(TraceEvent {
                name: "zeb.insert",
                cat: "rbcd",
                ts: self.raster_base + rec.start,
                tid: LANE_ZEB_INSERT,
                kind: EventKind::Span { dur: rec.end.saturating_sub(rec.start) },
                args,
            });
        }
        let mut args = vec![("occupancy", rec.occupancy), ("pairs", rec.pairs_emitted)];
        tile_args(&mut args);
        self.events.push(TraceEvent {
            name: "zeb.scan",
            cat: "rbcd",
            ts: self.raster_base + rec.scan_start,
            tid: LANE_ZEB_SCAN,
            kind: EventKind::Span { dur: rec.scan_end.saturating_sub(rec.scan_start) },
            args,
        });
        if rec.overflows > 0 {
            let mut args =
                vec![("overflows", rec.overflows), ("spares", rec.spare_allocations)];
            tile_args(&mut args);
            self.events.push(TraceEvent {
                name: "zeb.overflow",
                cat: "rbcd",
                ts: self.raster_base + rec.end,
                tid: LANE_MARKS,
                kind: EventKind::Instant,
                args,
            });
        }
        if rec.rung > 0 {
            let mut args = vec![("rung", rec.rung as u64)];
            tile_args(&mut args);
            self.events.push(TraceEvent {
                name: "ladder.rung",
                cat: "rbcd",
                ts: self.raster_base + rec.scan_end,
                tid: LANE_MARKS,
                kind: EventKind::Instant,
                args,
            });
        }
        self.cum_overflows += rec.overflows;
        self.cum_pairs += rec.pairs_emitted;
        self.events.push(TraceEvent {
            name: "rbcd",
            cat: "rbcd",
            ts: self.raster_base + rec.scan_end,
            tid: LANE_MARKS,
            kind: EventKind::Counter,
            args: vec![("overflows", self.cum_overflows), ("pairs", self.cum_pairs)],
        });
        self.heat.add_tile(rec);
    }

    /// Closes the current frame: emits its span and advances the
    /// global timeline past it.
    pub fn end_frame(&mut self, total_cycles: u64) {
        self.events.push(TraceEvent {
            name: "frame",
            cat: "gpu",
            ts: self.frame_base,
            tid: LANE_FRAME,
            kind: EventKind::Span { dur: total_cycles },
            args: vec![("frame", self.frames), ("cycles", total_cycles)],
        });
        self.frames += 1;
        self.next_base = self.frame_base + total_cycles;
    }

    /// All recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The accumulated per-tile heat grid.
    pub fn heat(&self) -> &HeatGrid {
        &self.heat
    }

    /// Frames recorded so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Renders the per-tile heat grid for `metric` as CSV (one row per
    /// tile row). See [`crate::HEATMAP_METRICS`] for the metric names.
    pub fn heatmap_csv(&self, metric: &str) -> Option<String> {
        self.heat.csv(metric)
    }

    /// Exports the event stream as Chrome trace-event JSON (the
    /// "JSON object format": `{"traceEvents": [...]}`), loadable in
    /// `chrome://tracing` and Perfetto. Timestamps are simulated GPU
    /// cycles reported through the `ts`/`dur` microsecond fields — the
    /// unit label in the viewer is nominal, the ordering is exact.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 256);
        out.push_str("{\n\"displayTimeUnit\": \"ms\",\n");
        out.push_str(&format!(
            "\"otherData\": {{\"clock\": \"simulated-cycles\", \"frames\": {}}},\n",
            self.frames
        ));
        out.push_str("\"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let (ph, dur) = match e.kind {
                EventKind::Span { dur } => ("X", Some(dur)),
                EventKind::Instant => ("i", None),
                EventKind::Counter => ("C", None),
            };
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \"ts\": {}, ",
                e.name, e.cat, ph, e.ts
            ));
            if let Some(dur) = dur {
                out.push_str(&format!("\"dur\": {dur}, "));
            }
            if ph == "i" {
                out.push_str("\"s\": \"t\", ");
            }
            out.push_str(&format!("\"pid\": 0, \"tid\": {}, \"args\": {{", e.tid));
            for (k, (name, value)) in e.args.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{name}\": {value}"));
            }
            out.push_str("}}");
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(x: u32, y: u32) -> TileZebRecord {
        TileZebRecord {
            tile_x: x,
            tile_y: y,
            start: 10,
            end: 30,
            scan_start: 30,
            scan_end: 50,
            insertions: 8,
            overflows: 2,
            spare_allocations: 1,
            occupancy: 6,
            pairs_emitted: 1,
            ff_drops: 0,
            scan_skipped: 3,
            rung: 1,
        }
    }

    #[test]
    fn frames_lay_end_to_end() {
        let mut t = TraceBuffer::new(2, 2);
        t.begin_frame();
        t.geometry_done(100);
        t.record_tile_raster(0, 0, 0, 40, 12);
        t.end_frame(500);
        t.begin_frame();
        t.geometry_done(80);
        t.end_frame(300);
        let frames: Vec<_> = t.events().iter().filter(|e| e.name == "frame").collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].ts, 0);
        assert_eq!(frames[1].ts, 500);
        // The tile span sits after the first frame's geometry.
        let tile = t.events().iter().find(|e| e.name == "tile").unwrap();
        assert_eq!(tile.ts, 100);
        assert_eq!(t.frames(), 2);
    }

    #[test]
    fn zeb_records_emit_taxonomy_and_heat() {
        let mut t = TraceBuffer::new(2, 2);
        t.begin_frame();
        t.geometry_done(100);
        t.record_zeb_tile(&rec(1, 0));
        t.end_frame(400);
        let names: Vec<_> = t.events().iter().map(|e| e.name).collect();
        for required in ["zeb.insert", "zeb.scan", "zeb.overflow", "ladder.rung", "rbcd"] {
            assert!(names.contains(&required), "missing {required} in {names:?}");
        }
        assert_eq!(t.heat().total("overflows"), 2);
        assert_eq!(t.heat().total("pairs"), 1);
    }

    #[test]
    fn tile_reuse_marks_timeline_and_heat() {
        let mut t = TraceBuffer::new(2, 2);
        t.begin_frame();
        t.geometry_done(100);
        t.record_tile_reuse(1, 0, 7);
        t.end_frame(300);
        let e = t.events().iter().find(|e| e.name == "tile.reuse").unwrap();
        assert_eq!(e.ts, 107);
        assert_eq!(e.kind, EventKind::Instant);
        assert_eq!(t.heat().total("reuse"), 1);
    }

    #[test]
    fn tile_bp_skip_marks_timeline_and_heat() {
        let mut t = TraceBuffer::new(2, 2);
        t.begin_frame();
        t.geometry_done(80);
        t.record_tile_bp_skip(0, 1, 9);
        t.end_frame(200);
        let e = t.events().iter().find(|e| e.name == "tile.bp_skipped").unwrap();
        assert_eq!(e.ts, 89);
        assert_eq!(e.kind, EventKind::Instant);
        assert_eq!(e.cat, "broadphase");
        assert_eq!(t.heat().total("broadphase"), 1);
    }

    #[test]
    fn tile_shed_marks_timeline_and_heat() {
        let mut t = TraceBuffer::new(2, 2);
        t.begin_frame();
        t.geometry_done(50);
        t.record_tile_shed(0, 1, 9);
        t.end_frame(200);
        let e = t.events().iter().find(|e| e.name == "tile.shed").unwrap();
        assert_eq!(e.ts, 59);
        assert_eq!(e.cat, "governor");
        assert_eq!(e.kind, EventKind::Instant);
        assert_eq!(t.heat().total("shed"), 1);
    }

    #[test]
    fn bin_splice_touches_heat_but_not_the_event_stream() {
        let mut t = TraceBuffer::new(2, 2);
        t.begin_frame();
        let before = t.events().len();
        t.record_bin_splice(1, 1);
        t.record_bin_splice(1, 1);
        assert_eq!(t.events().len(), before, "splices must not perturb the event stream");
        assert_eq!(t.heat().total("splice"), 2);
    }

    #[test]
    fn chrome_json_escapes_nothing_and_parses() {
        let mut t = TraceBuffer::new(1, 1);
        t.begin_frame();
        t.geometry_done(10);
        t.record_draw(0, 8, 12, 0);
        t.record_zeb_tile(&rec(0, 0));
        t.end_frame(100);
        let json = t.to_chrome_json();
        let v = crate::json::parse(&json).expect("exported trace parses");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert_eq!(events.len(), t.events().len());
    }
}
