//! Per-tile heat accumulation and CSV export.

use crate::event::TileZebRecord;

/// The metrics a [`HeatGrid`] accumulates, in export order. Each name
/// is a valid argument to [`HeatGrid::csv`] / [`HeatGrid::total`] and
/// becomes one CSV file per `repro --trace` run.
pub const HEATMAP_METRICS: [&str; 10] = [
    "occupancy",
    "overflows",
    "scan_cycles",
    "pairs",
    "rung",
    "reuse",
    "scan_skipped",
    "shed",
    "splice",
    "broadphase",
];

/// A `tiles_x` × `tiles_y` grid of per-tile accumulators, folded over
/// every [`TileZebRecord`] the trace sees (all frames summed; `rung`
/// keeps the worst rung a tile ever hit). The `reuse` plane counts
/// temporal-coherence replays per tile and is fed separately via
/// [`HeatGrid::add_reuse`]; the `shed` plane counts overload-governor
/// tile drops, fed via [`HeatGrid::add_shed`]; the `splice` plane
/// counts bin entries the incremental geometry front-end spliced from
/// its per-draw cache, fed via [`HeatGrid::add_splice`]; the
/// `broadphase` plane counts screen-space broad-phase tile skips, fed
/// via [`HeatGrid::add_broadphase`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeatGrid {
    tiles_x: u32,
    tiles_y: u32,
    occupancy: Vec<u64>,
    overflows: Vec<u64>,
    scan_cycles: Vec<u64>,
    pairs: Vec<u64>,
    rung: Vec<u64>,
    reuse: Vec<u64>,
    scan_skipped: Vec<u64>,
    shed: Vec<u64>,
    splice: Vec<u64>,
    broadphase: Vec<u64>,
}

impl HeatGrid {
    /// Creates a zeroed grid for a `tiles_x` × `tiles_y` tile layout.
    pub fn new(tiles_x: u32, tiles_y: u32) -> Self {
        let n = tiles_x as usize * tiles_y as usize;
        Self {
            tiles_x,
            tiles_y,
            occupancy: vec![0; n],
            overflows: vec![0; n],
            scan_cycles: vec![0; n],
            pairs: vec![0; n],
            rung: vec![0; n],
            reuse: vec![0; n],
            scan_skipped: vec![0; n],
            shed: vec![0; n],
            splice: vec![0; n],
            broadphase: vec![0; n],
        }
    }

    /// Grid width in tiles.
    pub fn tiles_x(&self) -> u32 {
        self.tiles_x
    }

    /// Grid height in tiles.
    pub fn tiles_y(&self) -> u32 {
        self.tiles_y
    }

    /// Folds one tile record into the grid. Records outside the grid
    /// (possible only on a mis-sized grid) are ignored.
    pub fn add_tile(&mut self, rec: &TileZebRecord) {
        if rec.tile_x >= self.tiles_x || rec.tile_y >= self.tiles_y {
            return;
        }
        let i = rec.tile_y as usize * self.tiles_x as usize + rec.tile_x as usize;
        self.occupancy[i] += rec.occupancy;
        self.overflows[i] += rec.overflows;
        self.scan_cycles[i] += rec.scan_end.saturating_sub(rec.scan_start);
        self.pairs[i] += rec.pairs_emitted;
        self.rung[i] = self.rung[i].max(rec.rung as u64);
        self.scan_skipped[i] += rec.scan_skipped;
    }

    /// Counts one temporal-coherence replay of tile (`x`, `y`).
    /// Out-of-grid coordinates are ignored, matching
    /// [`HeatGrid::add_tile`].
    pub fn add_reuse(&mut self, x: u32, y: u32) {
        if x >= self.tiles_x || y >= self.tiles_y {
            return;
        }
        self.reuse[y as usize * self.tiles_x as usize + x as usize] += 1;
    }

    /// Counts one overload-governor shed of tile (`x`, `y`). Out-of-grid
    /// coordinates are ignored, matching [`HeatGrid::add_tile`].
    pub fn add_shed(&mut self, x: u32, y: u32) {
        if x >= self.tiles_x || y >= self.tiles_y {
            return;
        }
        self.shed[y as usize * self.tiles_x as usize + x as usize] += 1;
    }

    /// Counts one bin entry the incremental geometry front-end spliced
    /// into tile (`x`, `y`) from its per-draw cache. Out-of-grid
    /// coordinates are ignored, matching [`HeatGrid::add_tile`].
    pub fn add_splice(&mut self, x: u32, y: u32) {
        if x >= self.tiles_x || y >= self.tiles_y {
            return;
        }
        self.splice[y as usize * self.tiles_x as usize + x as usize] += 1;
    }

    /// Counts one broad-phase skip of tile (`x`, `y`): the screen-space
    /// sweep proved no feasible collision pair can touch it, so raster
    /// and the Z-overlap scan were elided. Out-of-grid coordinates are
    /// ignored, matching [`HeatGrid::add_tile`].
    pub fn add_broadphase(&mut self, x: u32, y: u32) {
        if x >= self.tiles_x || y >= self.tiles_y {
            return;
        }
        self.broadphase[y as usize * self.tiles_x as usize + x as usize] += 1;
    }

    fn cells(&self, metric: &str) -> Option<&[u64]> {
        match metric {
            "occupancy" => Some(&self.occupancy),
            "overflows" => Some(&self.overflows),
            "scan_cycles" => Some(&self.scan_cycles),
            "pairs" => Some(&self.pairs),
            "rung" => Some(&self.rung),
            "reuse" => Some(&self.reuse),
            "scan_skipped" => Some(&self.scan_skipped),
            "shed" => Some(&self.shed),
            "splice" => Some(&self.splice),
            "broadphase" => Some(&self.broadphase),
            _ => None,
        }
    }

    /// Sum of `metric` over all tiles (for `rung`: the sum of per-tile
    /// worst rungs). Returns 0 for an unknown metric.
    pub fn total(&self, metric: &str) -> u64 {
        self.cells(metric).map(|c| c.iter().sum()).unwrap_or(0)
    }

    /// Renders `metric` as a plain numeric CSV grid: `tiles_y` lines of
    /// `tiles_x` comma-separated values, row 0 = top tile row. `None`
    /// for an unknown metric.
    pub fn csv(&self, metric: &str) -> Option<String> {
        let cells = self.cells(metric)?;
        let mut out = String::with_capacity(cells.len() * 4);
        for y in 0..self.tiles_y as usize {
            let row = &cells[y * self.tiles_x as usize..(y + 1) * self.tiles_x as usize];
            for (x, v) in row.iter().enumerate() {
                if x > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(x: u32, y: u32, overflows: u64, rung: u8) -> TileZebRecord {
        TileZebRecord {
            tile_x: x,
            tile_y: y,
            start: 0,
            end: 10,
            scan_start: 10,
            scan_end: 25,
            insertions: 4,
            overflows,
            spare_allocations: 0,
            occupancy: 4,
            pairs_emitted: 2,
            ff_drops: 0,
            scan_skipped: 1,
            rung,
        }
    }

    #[test]
    fn accumulates_and_totals() {
        let mut g = HeatGrid::new(3, 2);
        g.add_tile(&rec(0, 0, 1, 0));
        g.add_tile(&rec(2, 1, 3, 2));
        g.add_tile(&rec(2, 1, 0, 1)); // second frame, same tile
        assert_eq!(g.total("overflows"), 4);
        assert_eq!(g.total("occupancy"), 12);
        assert_eq!(g.total("pairs"), 6);
        assert_eq!(g.total("scan_cycles"), 45);
        // rung keeps the per-tile max, not the sum.
        assert_eq!(g.total("rung"), 2);
        assert_eq!(g.total("bogus"), 0);
    }

    #[test]
    fn reuse_plane_counts_replays() {
        let mut g = HeatGrid::new(2, 2);
        g.add_reuse(1, 1);
        g.add_reuse(1, 1);
        g.add_reuse(0, 0);
        g.add_reuse(7, 7); // ignored, out of grid
        assert_eq!(g.total("reuse"), 3);
        assert_eq!(g.csv("reuse").unwrap(), "1,0\n0,2\n");
    }

    #[test]
    fn shed_plane_counts_governor_drops() {
        let mut g = HeatGrid::new(2, 2);
        g.add_shed(0, 1);
        g.add_shed(0, 1);
        g.add_shed(9, 0); // ignored, out of grid
        assert_eq!(g.total("shed"), 2);
        assert_eq!(g.csv("shed").unwrap(), "0,0\n2,0\n");
    }

    #[test]
    fn splice_plane_counts_frontend_bin_splices() {
        let mut g = HeatGrid::new(2, 2);
        g.add_splice(1, 0);
        g.add_splice(1, 0);
        g.add_splice(0, 1);
        g.add_splice(4, 4); // ignored, out of grid
        assert_eq!(g.total("splice"), 3);
        assert_eq!(g.csv("splice").unwrap(), "0,2\n1,0\n");
    }

    #[test]
    fn broadphase_plane_counts_tile_skips() {
        let mut g = HeatGrid::new(2, 2);
        g.add_broadphase(0, 0);
        g.add_broadphase(0, 0);
        g.add_broadphase(1, 1);
        g.add_broadphase(3, 0); // ignored, out of grid
        assert_eq!(g.total("broadphase"), 3);
        assert_eq!(g.csv("broadphase").unwrap(), "2,0\n0,1\n");
    }

    #[test]
    fn csv_is_row_major_grid() {
        let mut g = HeatGrid::new(2, 2);
        g.add_tile(&rec(1, 0, 5, 0));
        let csv = g.csv("overflows").unwrap();
        assert_eq!(csv, "0,5\n0,0\n");
        assert!(g.csv("bogus").is_none());
        for m in HEATMAP_METRICS {
            assert!(g.csv(m).is_some(), "metric {m} must render");
        }
    }

    #[test]
    fn out_of_bounds_records_ignored() {
        let mut g = HeatGrid::new(1, 1);
        g.add_tile(&rec(5, 5, 9, 3));
        assert_eq!(g.total("overflows"), 0);
    }
}
