//! A minimal JSON parser for trace validation.
//!
//! The workspace deliberately carries no serde; exported artefacts are
//! hand-rolled JSON. This parser closes the loop: tests and the
//! `repro --trace` path re-parse what was written and fail loudly on a
//! malformed export instead of shipping it.
//!
//! Supports the full JSON grammar over `f64` numbers. Not a streaming
//! parser — intended for megabyte-scale trace files, not gigabytes.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order preserved, duplicate keys kept.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as a single JSON document (trailing whitespace
/// allowed, trailing garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are replaced rather than paired;
                            // trace output never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(byte) = self.peek() {
                        if byte == b'"' || byte == b'\\' || byte < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"traceEvents": [{"name": "frame", "ts": 0, "dur": 12}, {"ok": true}],
                "otherData": {"clock": "simulated-cycles"}, "n": -3.5e2, "z": null}"#,
        )
        .unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("frame"));
        assert_eq!(events[0].get("dur").unwrap().as_u64(), Some(12));
        assert_eq!(events[1].get("ok"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("otherData").unwrap().get("clock").unwrap().as_str(),
            Some("simulated-cycles")
        );
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-350.0));
        assert_eq!(v.get("z"), Some(&Value::Null));
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""a\n\t\"\\A""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\x01\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
