//! Deterministic observability for the RBCD simulator.
//!
//! Three pieces, all built on *simulated* cycle timestamps (never
//! wall-clock), so every artefact is bit-identical across host thread
//! counts and replayable:
//!
//! * [`CounterSet`] — the typed counter registry: an ordered map of
//!   stable string keys to `u64` activity counters, with a
//!   snapshot/delta API. It subsumes the per-subsystem stats structs
//!   (`GeometryStats`, `RasterStats`, `RbcdStats`) behind one uniform
//!   surface for metrics, reports, and golden tests.
//! * [`TraceBuffer`] — the structured event recorder: frame → geometry
//!   → tile → ZEB insert/scan/overflow/ladder-rung events on the
//!   simulated timeline, exported as Chrome trace-event JSON
//!   ([`TraceBuffer::to_chrome_json`], loadable in `chrome://tracing`
//!   or Perfetto) and as per-tile heatmap CSVs
//!   ([`TraceBuffer::heatmap_csv`]).
//! * [`json`] — a minimal JSON parser used to validate exported traces
//!   in tests and the `repro --trace` smoke (the workspace deliberately
//!   carries no serde).
//!
//! The crate is a leaf: it knows nothing about the GPU or the RBCD
//! unit. Producers (`rbcd-gpu`, `rbcd-core`) push plain integers in;
//! consumers (`rbcd-bench`) pull JSON/CSV out.

#![warn(missing_docs)]

mod counters;
mod event;
mod heatmap;
pub mod json;

pub use counters::{CounterScopes, CounterSet};
pub use event::{EventKind, TileZebRecord, TraceBuffer, TraceEvent};
pub use heatmap::{HeatGrid, HEATMAP_METRICS};
