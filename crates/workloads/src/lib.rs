//! Synthetic benchmark scenes standing in for the paper's four
//! commercial Android games (Table 2: *Captain America* `cap`, *Crazy
//! Snowboard* `crazy`, *Sleepy Jack* `sleepy`, *Temple Run* `temple`).
//!
//! The original evaluation captured OpenGL command traces from closed-
//! source Unity titles; those traces are not available, so each scene
//! here is a deterministic, seeded generator tuned to reproduce the
//! properties that drive the paper's results:
//!
//! * object counts, mesh densities, and the collisionable fraction of
//!   the geometry (→ extra tagged-to-be-culled primitives, Fig. 10/11);
//! * scenery-dominated fragment workload (→ small RBCD fragment
//!   overhead);
//! * per-benchmark *depth concentration* of collisionable geometry: how
//!   many collisionable surfaces stack on the same pixels — low for
//!   `cap`/`crazy` ("less objects overlapping the same pixels", §5.3),
//!   medium for `sleepy`, high for `temple` (→ the ZEB overflow ordering
//!   of Table 3);
//! * `crazy`'s large collisionable terrain coverage (→ the worst
//!   single-ZEB stall overhead of Fig. 9).
//!
//! # Example
//!
//! ```
//! let scene = rbcd_workloads::cap();
//! let trace = scene.frame_trace(0);
//! assert!(trace.triangle_count() > 1000);
//! assert!(scene.collidable_meshes().len() > 10);
//! ```

#![warn(missing_docs)]

mod motion;
mod scene;
mod sparse;
mod suite;
mod temporal;

pub use motion::Motion;
pub use scene::{CameraPath, Scene, SceneObject};
pub use sparse::{drift, meadow, sparse, sparse_family};
pub use suite::{cap, crazy, shells, sleepy, suite, temple};
pub use temporal::{atrium, resting, temporal_suite, vault};
