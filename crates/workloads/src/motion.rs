//! Deterministic scripted motion.

use rbcd_math::{Aabb, Mat4, Vec3};

/// A closed-form, deterministic motion path: the same `(path, time)`
/// always yields the same transform, so traces are reproducible without
/// storing per-frame data.
#[derive(Debug, Clone, PartialEq)]
pub enum Motion {
    /// Fixed pose.
    Static {
        /// World position.
        position: Vec3,
        /// Yaw about +Y in radians.
        yaw: f32,
    },
    /// Straight-line motion.
    Slide {
        /// Position at `t = 0`.
        start: Vec3,
        /// Velocity in units/second.
        velocity: Vec3,
    },
    /// Circular orbit in the XZ plane with a spin about +Y.
    Orbit {
        /// Orbit centre.
        center: Vec3,
        /// Orbit radius.
        radius: f32,
        /// Angular speed in radians/second.
        angular_speed: f32,
        /// Initial angle.
        phase: f32,
    },
    /// Sinusoidal oscillation around a centre point.
    Oscillate {
        /// Rest position.
        center: Vec3,
        /// Peak displacement per axis.
        amplitude: Vec3,
        /// Oscillation frequency in Hz.
        frequency: f32,
        /// Phase offset in radians.
        phase: f32,
    },
    /// Straight-line motion reflected off the walls of a box (billiard
    /// style), with a tumbling spin.
    Bounce {
        /// Position at `t = 0`.
        start: Vec3,
        /// Velocity in units/second.
        velocity: Vec3,
        /// Reflecting bounds.
        bounds: Aabb,
        /// Tumble speed about +Y in radians/second.
        spin: f32,
    },
}

/// Reflects the 1-D coordinate `x` into `[lo, hi]` as a triangle wave.
fn reflect(x: f32, lo: f32, hi: f32) -> f32 {
    let span = hi - lo;
    if span <= 0.0 {
        return lo;
    }
    let period = 2.0 * span;
    let mut r = (x - lo).rem_euclid(period);
    if r > span {
        r = period - r;
    }
    lo + r
}

impl Motion {
    /// Transform at time `t` seconds.
    pub fn transform(&self, t: f32) -> Mat4 {
        match *self {
            Motion::Static { position, yaw } => {
                Mat4::translation(position) * Mat4::rotation_y(yaw)
            }
            Motion::Slide { start, velocity } => Mat4::translation(start + velocity * t),
            Motion::Orbit { center, radius, angular_speed, phase } => {
                let a = phase + angular_speed * t;
                let p = center + Vec3::new(radius * a.cos(), 0.0, radius * a.sin());
                Mat4::translation(p) * Mat4::rotation_y(-a)
            }
            Motion::Oscillate { center, amplitude, frequency, phase } => {
                let s = (std::f32::consts::TAU * frequency * t + phase).sin();
                Mat4::translation(center + amplitude * s)
            }
            Motion::Bounce { start, velocity, bounds, spin } => {
                let raw = start + velocity * t;
                let p = Vec3::new(
                    reflect(raw.x, bounds.min.x, bounds.max.x),
                    reflect(raw.y, bounds.min.y, bounds.max.y),
                    reflect(raw.z, bounds.min.z, bounds.max.z),
                );
                Mat4::translation(p) * Mat4::rotation_y(spin * t)
            }
        }
    }

    /// Position at time `t` (the transform applied to the origin).
    pub fn position(&self, t: f32) -> Vec3 {
        self.transform(t).transform_point(Vec3::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_is_constant() {
        let m = Motion::Static { position: Vec3::new(1.0, 2.0, 3.0), yaw: 0.5 };
        assert_eq!(m.position(0.0), m.position(100.0));
    }

    #[test]
    fn slide_moves_linearly() {
        let m = Motion::Slide { start: Vec3::ZERO, velocity: Vec3::new(2.0, 0.0, 0.0) };
        assert_eq!(m.position(3.0), Vec3::new(6.0, 0.0, 0.0));
    }

    #[test]
    fn orbit_stays_on_circle() {
        let m = Motion::Orbit {
            center: Vec3::new(0.0, 1.0, 0.0),
            radius: 5.0,
            angular_speed: 1.0,
            phase: 0.0,
        };
        for t in [0.0f32, 0.7, 2.3, 9.1] {
            let p = m.position(t);
            let d = (p - Vec3::new(0.0, 1.0, 0.0)).length();
            assert!((d - 5.0).abs() < 1e-4);
            assert!((p.y - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn oscillate_bounded_by_amplitude() {
        let m = Motion::Oscillate {
            center: Vec3::ZERO,
            amplitude: Vec3::new(2.0, 0.0, 0.0),
            frequency: 1.3,
            phase: 0.4,
        };
        for i in 0..100 {
            let p = m.position(i as f32 * 0.07);
            assert!(p.x.abs() <= 2.0 + 1e-4);
        }
    }

    #[test]
    fn bounce_stays_in_bounds() {
        let bounds = Aabb::new(Vec3::new(-2.0, 0.0, -3.0), Vec3::new(2.0, 4.0, 3.0));
        let m = Motion::Bounce {
            start: Vec3::new(0.0, 1.0, 0.0),
            velocity: Vec3::new(1.7, 2.3, -0.9),
            bounds,
            spin: 1.0,
        };
        for i in 0..200 {
            let p = m.position(i as f32 * 0.13);
            assert!(bounds.inflate(1e-3).contains_point(p), "escaped at {p}");
        }
    }

    #[test]
    fn reflect_triangle_wave() {
        assert_eq!(reflect(0.0, 0.0, 2.0), 0.0);
        assert_eq!(reflect(1.5, 0.0, 2.0), 1.5);
        assert_eq!(reflect(2.5, 0.0, 2.0), 1.5);
        assert_eq!(reflect(4.0, 0.0, 2.0), 0.0);
        assert_eq!(reflect(-0.5, 0.0, 2.0), 0.5);
        // Degenerate span collapses to lo.
        assert_eq!(reflect(7.0, 1.0, 1.0), 1.0);
    }

    #[test]
    fn determinism() {
        let m = Motion::Bounce {
            start: Vec3::ZERO,
            velocity: Vec3::new(1.0, 2.0, 3.0),
            bounds: Aabb::new(Vec3::splat(-5.0), Vec3::splat(5.0)),
            spin: 0.7,
        };
        assert_eq!(m.transform(3.21), m.transform(3.21));
    }
}
