//! Scene description: objects + camera path → per-frame traces.

use crate::motion::Motion;
use rbcd_geometry::Mesh;
use rbcd_gpu::{Camera, CullMode, DrawCommand, FrameTrace, ObjectId, ShaderCost};
use rbcd_math::{Mat4, Vec3};
use std::sync::Arc;

/// One animated object.
#[derive(Debug, Clone)]
pub struct SceneObject {
    /// Shared geometry.
    pub mesh: Arc<Mesh>,
    /// Scripted motion.
    pub motion: Motion,
    /// Shader cost of this object's draw.
    pub shader: ShaderCost,
    /// Face culling state.
    pub cull: CullMode,
}

impl SceneObject {
    /// An object with default pipeline state.
    pub fn new(mesh: impl Into<Arc<Mesh>>, motion: Motion) -> Self {
        Self {
            mesh: mesh.into(),
            motion,
            shader: ShaderCost::default(),
            cull: CullMode::Back,
        }
    }

    /// Overrides the shader cost (builder style).
    #[must_use]
    pub fn with_shader(mut self, shader: ShaderCost) -> Self {
        self.shader = shader;
        self
    }

    /// Overrides the cull mode (builder style).
    #[must_use]
    pub fn with_cull(mut self, cull: CullMode) -> Self {
        self.cull = cull;
        self
    }
}

/// Deterministic camera path.
#[derive(Debug, Clone, PartialEq)]
pub struct CameraPath {
    eye_start: Vec3,
    eye_velocity: Vec3,
    /// Where the camera looks, relative to the eye.
    look_offset: Vec3,
    /// Vertical field of view in radians.
    pub fov_y: f32,
    /// Near plane distance.
    pub near: f32,
    /// Far plane distance.
    pub far: f32,
}

impl CameraPath {
    /// A static camera at `eye` looking at `target`.
    pub fn fixed(eye: Vec3, target: Vec3) -> Self {
        Self {
            eye_start: eye,
            eye_velocity: Vec3::ZERO,
            look_offset: target - eye,
            fov_y: 1.0,
            near: 0.5,
            far: 300.0,
        }
    }

    /// A dollying camera: eye moves at `velocity`, always looking at
    /// `eye + look_offset`.
    pub fn dolly(eye_start: Vec3, velocity: Vec3, look_offset: Vec3) -> Self {
        Self {
            eye_start,
            eye_velocity: velocity,
            look_offset,
            fov_y: 1.0,
            near: 0.5,
            far: 300.0,
        }
    }

    /// Camera state at time `t` seconds.
    pub fn camera(&self, t: f32) -> Camera {
        let eye = self.eye_start + self.eye_velocity * t;
        Camera::perspective(eye, eye + self.look_offset, self.fov_y, self.near, self.far)
    }
}

/// A complete benchmark scene.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Full benchmark name (Table 2).
    pub name: &'static str,
    /// Short alias used in the figures (`cap`, `crazy`, ...).
    pub alias: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Collisionable objects; index `i` gets `ObjectId(i + 1)`.
    pub collidables: Vec<SceneObject>,
    /// Non-collisionable scenery.
    pub scenery: Vec<SceneObject>,
    /// Camera path.
    pub camera: CameraPath,
    /// Default frame count for experiments.
    pub frames: usize,
    /// Animation rate used to convert frame numbers to seconds.
    pub fps: f32,
}

impl Scene {
    /// The object id assigned to collidable `index`.
    ///
    /// Ids start at 1 so 0 can never alias a real object.
    pub fn object_id(index: usize) -> ObjectId {
        ObjectId::new(index as u16 + 1)
    }

    /// Time of `frame` in seconds.
    pub fn time_of(&self, frame: usize) -> f32 {
        frame as f32 / self.fps
    }

    /// The GPU command trace for `frame`: scenery first (background),
    /// then collidables, matching a typical submission order.
    pub fn frame_trace(&self, frame: usize) -> FrameTrace {
        let t = self.time_of(frame);
        let mut draws = Vec::with_capacity(self.scenery.len() + self.collidables.len());
        for obj in &self.scenery {
            draws.push(
                DrawCommand::scenery(obj.mesh.clone())
                    .with_model(obj.motion.transform(t))
                    .with_shader(obj.shader)
                    .with_cull(obj.cull),
            );
        }
        for (i, obj) in self.collidables.iter().enumerate() {
            draws.push(
                DrawCommand::collidable(obj.mesh.clone(), Self::object_id(i))
                    .with_model(obj.motion.transform(t))
                    .with_shader(obj.shader)
                    .with_cull(obj.cull),
            );
        }
        FrameTrace::new(self.camera.camera(t), draws)
    }

    /// World transforms of the collidables at `frame` (the input to the
    /// CPU detector).
    pub fn collidable_transforms(&self, frame: usize) -> Vec<Mat4> {
        let t = self.time_of(frame);
        self.collidables.iter().map(|o| o.motion.transform(t)).collect()
    }

    /// `(id, mesh)` for every collidable, in id order.
    pub fn collidable_meshes(&self) -> Vec<(ObjectId, Arc<Mesh>)> {
        self.collidables
            .iter()
            .enumerate()
            .map(|(i, o)| (Self::object_id(i), o.mesh.clone()))
            .collect()
    }

    /// Total triangles per frame.
    pub fn triangles_per_frame(&self) -> usize {
        self.collidables
            .iter()
            .chain(&self.scenery)
            .map(|o| o.mesh.triangle_count())
            .sum()
    }

    /// Triangles per frame belonging to collisionable objects.
    pub fn collidable_triangles(&self) -> usize {
        self.collidables.iter().map(|o| o.mesh.triangle_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_geometry::shapes;

    fn tiny_scene() -> Scene {
        Scene {
            name: "Test",
            alias: "test",
            description: "test scene",
            collidables: vec![
                SceneObject::new(shapes::cube(1.0), Motion::Static { position: Vec3::ZERO, yaw: 0.0 }),
                SceneObject::new(
                    shapes::cube(1.0),
                    Motion::Slide { start: Vec3::new(3.0, 0.0, 0.0), velocity: Vec3::new(-1.0, 0.0, 0.0) },
                ),
            ],
            scenery: vec![SceneObject::new(
                shapes::ground_quad(20.0, 20.0),
                Motion::Static { position: Vec3::new(0.0, -2.0, 0.0), yaw: 0.0 },
            )],
            camera: CameraPath::fixed(Vec3::new(0.0, 3.0, 10.0), Vec3::ZERO),
            frames: 10,
            fps: 30.0,
        }
    }

    #[test]
    fn trace_contains_all_draws_in_order() {
        let s = tiny_scene();
        let trace = s.frame_trace(0);
        assert_eq!(trace.draws.len(), 3);
        assert!(trace.draws[0].collidable.is_none(), "scenery first");
        assert_eq!(trace.draws[1].collidable, Some(ObjectId::new(1)));
        assert_eq!(trace.draws[2].collidable, Some(ObjectId::new(2)));
    }

    #[test]
    fn transforms_animate_over_frames() {
        let s = tiny_scene();
        let t0 = s.collidable_transforms(0);
        let t9 = s.collidable_transforms(9);
        assert_eq!(t0[0], t9[0], "static object");
        assert_ne!(t0[1], t9[1], "sliding object moved");
    }

    #[test]
    fn ids_are_one_based_and_stable() {
        assert_eq!(Scene::object_id(0), ObjectId::new(1));
        assert_eq!(Scene::object_id(41), ObjectId::new(42));
        let s = tiny_scene();
        let meshes = s.collidable_meshes();
        assert_eq!(meshes[0].0, ObjectId::new(1));
        assert_eq!(meshes.len(), 2);
    }

    #[test]
    fn triangle_accounting() {
        let s = tiny_scene();
        assert_eq!(s.collidable_triangles(), 24);
        assert_eq!(s.triangles_per_frame(), 26);
    }

    #[test]
    fn camera_path_dolly_moves() {
        let p = CameraPath::dolly(Vec3::ZERO, Vec3::new(0.0, 0.0, -2.0), -Vec3::Z * 10.0);
        let c0 = p.camera(0.0);
        let c1 = p.camera(1.0);
        assert_ne!(c0.view, c1.view);
    }
}
