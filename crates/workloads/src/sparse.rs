//! Sparse-swarm benchmark scenes (`repro broadphase`).
//!
//! Not part of the paper's Table 2 suite: these clips are shaped for
//! the screen-space broad phase, which pays off when collidable bodies
//! are small, numerous, and spread out — most tiles then hold zero or
//! one object and provably cannot produce a collision pair. The regime
//! is deliberately the one the temporal suite does *not* cover: the
//! bodies keep moving (tile signatures keep missing) and two of the
//! clips move the camera too (the geometry cache keeps missing), so
//! any win must come from pair-infeasibility pruning, not from
//! frame-to-frame reuse.

use crate::motion::Motion;
use crate::scene::{CameraPath, Scene, SceneObject};
use rbcd_geometry::{shapes, Mesh};
use rbcd_gpu::{CullMode, ShaderCost};
use rbcd_math::{Aabb, Mat4, Rng, Vec3};
use std::sync::Arc;

/// The sparse clips, in pruning-headroom order. The first entry is the
/// `sparse` scene that also rides in [`crate::suite`].
pub fn sparse_family() -> Vec<Scene> {
    vec![sparse(), drift(), meadow()]
}

/// Fragment-heavy full-screen scenery: a wide ground plane, a back
/// wall, and a sky layer. With the bodies covering only slivers of the
/// screen, almost every tile is scenery-only — exactly the image-side
/// work the broad phase elides.
fn field_scenery(half: f32, wall_height: f32) -> Vec<SceneObject> {
    let heavy = |mesh: Mesh, p: Vec3| {
        SceneObject::new(mesh, Motion::Static { position: p, yaw: 0.0 })
            .with_shader(ShaderCost { vertex_cycles: 4, fragment_cycles: 20 })
    };
    vec![
        heavy(shapes::ground_quad(half, half), Vec3::ZERO),
        heavy(
            shapes::ground_quad(half, wall_height)
                .transformed(&Mat4::rotation_x(std::f32::consts::FRAC_PI_2)),
            Vec3::new(0.0, wall_height, -half),
        ),
        heavy(
            shapes::ground_quad(half * 3.0, wall_height * 3.0)
                .transformed(&Mat4::rotation_x(std::f32::consts::FRAC_PI_2)),
            Vec3::new(0.0, wall_height, -half * 1.35),
        ),
    ]
}

/// The small-body mesh set shared by the family. Subdivision-1
/// icospheres keep each body's triangle budget modest while the swarm
/// as a whole still clears the suite's geometry floor.
fn body_meshes() -> Vec<Arc<Mesh>> {
    vec![
        Arc::new(shapes::icosphere(0.30, 1)),
        Arc::new(shapes::cuboid(Vec3::new(0.24, 0.24, 0.24))),
        Arc::new(shapes::capsule(0.18, 0.3, 10, 5)),
        Arc::new(shapes::star_prism(5, 0.3, 0.14, 0.2)),
    ]
}

/// Scatters `count` small bodies over a wide slab of space, each with
/// its own local motion so the swarm never congregates: the spread —
/// and with it the pruning headroom — is preserved across the whole
/// clip. Every eighth body gets a touching partner so the pair set is
/// never empty and the exactness legs compare real pairs.
fn swarm(rng: &mut Rng, count: usize, mostly_moving: bool) -> Vec<SceneObject> {
    let meshes = body_meshes();
    let mut bodies = Vec::new();
    for i in 0..count {
        let mesh = meshes[i % meshes.len()].clone();
        let start = Vec3::new(
            rng.gen_range(-13.0..13.0),
            rng.gen_range(0.5..4.6),
            rng.gen_range(-26.0..-5.0),
        );
        // Thin star prisms render double-sided, like cap's props; the
        // rest backface-cull, so the deferred-culling path stays
        // exercised (`triangles_tagged > 0`).
        let cull = if i % meshes.len() == 3 { CullMode::None } else { CullMode::Back };
        let moving = mostly_moving || i % 2 != 0;
        let motion = if !moving {
            Motion::Static { position: start, yaw: rng.gen_range(0.0..std::f32::consts::TAU) }
        } else if i % 3 == 0 {
            Motion::Oscillate {
                center: start,
                amplitude: Vec3::new(
                    rng.gen_range(0.1..0.5),
                    rng.gen_range(0.0..0.3),
                    rng.gen_range(0.0..0.3),
                ),
                frequency: rng.gen_range(0.3..1.1),
                phase: rng.gen_range(0.0..std::f32::consts::TAU),
            }
        } else {
            // Billiards inside a small private box around the spawn
            // point: the body tumbles forever without drifting toward
            // its neighbours.
            Motion::Bounce {
                start,
                velocity: Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-0.4..0.4),
                    rng.gen_range(-0.6..0.6),
                ),
                bounds: Aabb::new(start - Vec3::splat(0.7), start + Vec3::splat(0.7)),
                spin: rng.gen_range(-1.2..1.2),
            }
        };
        bodies.push(SceneObject::new(mesh.clone(), motion).with_cull(cull));
        if i % 8 == 0 {
            // A partner in permanent grazing contact: centres 0.45
            // apart against ~0.3 half-extents.
            bodies.push(
                SceneObject::new(
                    mesh,
                    Motion::Oscillate {
                        center: start + Vec3::new(0.45, 0.0, 0.0),
                        amplitude: Vec3::new(0.08, 0.0, 0.0),
                        frequency: rng.gen_range(0.4..0.9),
                        phase: rng.gen_range(0.0..std::f32::consts::TAU),
                    },
                )
                .with_cull(cull),
            );
        }
    }
    bodies
}

/// `sparse` — the headline sparse-swarm clip (also in [`crate::suite`]):
/// ~90 small bodies spread over a wide field under a fixed camera, half
/// of them moving, a handful in permanent grazing contact. Contact
/// density is low by construction, so nearly every occupied tile holds
/// a single body and nearly every other tile is scenery-only — the
/// broad phase's best case that still carries a live pair set.
pub fn sparse() -> Scene {
    let mut rng = Rng::seed_from_u64(0x5A_4253);
    let collidables = swarm(&mut rng, 80, false);
    Scene {
        name: "Sparse Swarm",
        alias: "sparse",
        description: "sparse: many small spread-out bodies, low contact density, fixed camera",
        collidables,
        scenery: field_scenery(16.0, 7.0),
        camera: CameraPath::fixed(Vec3::new(0.0, 3.4, 7.0), Vec3::new(0.0, 1.8, -8.0)),
        frames: 16,
        fps: 30.0,
    }
}

/// `drift` — the fully-dynamic arm: every body moves every frame, so
/// tile signatures and the geometry cache miss continuously and neither
/// temporal reuse nor incremental binning can help. Whatever `repro
/// broadphase` wins here is pure pair-infeasibility pruning.
pub fn drift() -> Scene {
    let mut rng = Rng::seed_from_u64(0xD41F7);
    let collidables = swarm(&mut rng, 64, true);
    Scene {
        name: "Drift Field",
        alias: "drift",
        description: "sparse: fully-dynamic swarm, every body moving every frame",
        collidables,
        scenery: field_scenery(16.0, 7.0),
        camera: CameraPath::fixed(Vec3::new(0.0, 3.0, 6.0), Vec3::new(0.0, 1.8, -9.0)),
        frames: 16,
        fps: 30.0,
    }
}

/// `meadow` — the first-frame arm: a dollying camera sweeps over a
/// mostly static scattering of bodies. The moving view re-seeds the
/// geometry cache every frame, so each frame pays first-frame cost —
/// the regime PR 4's and PR 9's caches cannot touch.
pub fn meadow() -> Scene {
    let mut rng = Rng::seed_from_u64(0x003E_AD0E);
    let collidables = swarm(&mut rng, 56, false);
    Scene {
        name: "Meadow Flyover",
        alias: "meadow",
        description: "sparse: dollying camera over scattered bodies, first-frame cost every frame",
        collidables,
        scenery: field_scenery(18.0, 7.0),
        camera: CameraPath::dolly(
            Vec3::new(-3.0, 3.6, 7.5),
            Vec3::new(0.5, 0.0, -0.4),
            Vec3::new(0.0, -1.8, -14.0),
        ),
        frames: 16,
        fps: 30.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_is_sparse_first() {
        let aliases: Vec<&str> = sparse_family().iter().map(|s| s.alias).collect();
        assert_eq!(aliases, vec!["sparse", "drift", "meadow"]);
    }

    #[test]
    fn sparse_scenes_are_deterministic() {
        for (a, b) in sparse_family().iter().zip(sparse_family().iter()) {
            assert_eq!(
                a.collidable_transforms(7),
                b.collidable_transforms(7),
                "{}: generator must be seed-stable",
                a.alias
            );
        }
    }

    #[test]
    fn drift_moves_every_body() {
        let s = drift();
        let first = s.collidable_transforms(0);
        let last = s.collidable_transforms(s.frames - 1);
        let moved = first.iter().zip(&last).filter(|(a, b)| a != b).count();
        assert_eq!(moved, first.len(), "the fully-dynamic arm must leave nothing static");
    }

    #[test]
    fn sparse_scenes_produce_pairs_and_pruning_headroom() {
        use rbcd_core::{detect_frame_collisions, RbcdConfig};
        use rbcd_gpu::{BroadPhase, GpuConfig, NullCollisionUnit, PipelineMode, Simulator};
        use rbcd_math::Viewport;
        for s in sparse_family() {
            let gpu = GpuConfig { viewport: Viewport::new(192, 128), ..GpuConfig::default() };
            let result = detect_frame_collisions(&s.frame_trace(0), &gpu, &RbcdConfig::default());
            assert!(!result.pairs().is_empty(), "{}: grazing partners must collide", s.alias);

            // The family exists to give the broad phase headroom: the
            // majority of occupied tiles must be provably pair-free.
            let mut sim = Simulator::new(gpu);
            sim.set_broadphase(BroadPhase::On);
            let stats = sim.render_frame_parallel(
                &s.frame_trace(0),
                PipelineMode::Rbcd,
                &mut NullCollisionUnit,
                1,
            );
            assert!(
                stats.broadphase.tiles_skipped * 2 > stats.raster.tiles_processed,
                "{}: want most tiles skipped, got {}/{}",
                s.alias,
                stats.broadphase.tiles_skipped,
                stats.raster.tiles_processed
            );
        }
    }
}
