//! The four benchmark scenes (Table 2).
//!
//! Every generator is deterministic: a fixed seed drives object
//! placement, and all motion is closed-form in time. Knobs were tuned so
//! the per-benchmark *depth concentration* of collisionable geometry
//! reproduces the ZEB-overflow ordering of Table 3 (cap ≈ crazy ≪
//! sleepy < temple) — see EXPERIMENTS.md for measured values.

use crate::motion::Motion;
use crate::scene::{CameraPath, Scene, SceneObject};
use rbcd_math::Rng;
use rbcd_geometry::{shapes, Mesh};
use rbcd_gpu::ShaderCost;
use rbcd_math::{Aabb, Mat4, Vec3};
use std::sync::Arc;

/// The paper's four benchmarks in Table 2 order, plus the house
/// `sparse` swarm clip (low contact density — the regime none of the
/// paper scenes cover), so tier-1 suite sweeps exercise the
/// broad-phase-relevant shape too.
pub fn suite() -> Vec<Scene> {
    vec![cap(), crazy(), sleepy(), temple(), crate::sparse::sparse()]
}

/// A field of decorative, non-collisionable meshes — the environment
/// detail (rocks, columns, crowd, foliage) that makes up the bulk of a
/// game frame's primitives. Games tag only gameplay-relevant objects as
/// collisionable (§3.2), so most primitives never reach the RBCD unit.
fn decor_field(
    rng: &mut Rng,
    count: usize,
    x: std::ops::Range<f32>,
    y: std::ops::Range<f32>,
    z: std::ops::Range<f32>,
) -> Vec<SceneObject> {
    let meshes: Vec<Arc<Mesh>> = vec![
        Arc::new(shapes::icosphere(0.5, 2)),
        Arc::new(shapes::capsule(0.35, 0.9, 14, 7)),
        Arc::new(shapes::cuboid(Vec3::new(0.5, 0.9, 0.5))),
        Arc::new(shapes::star_prism(5, 0.6, 0.3, 0.5)),
        Arc::new(shapes::torus(0.55, 0.2, 14, 8)),
    ];
    (0..count)
        .map(|i| {
            SceneObject::new(
                meshes[i % meshes.len()].clone(),
                Motion::Static {
                    position: Vec3::new(
                        rng.gen_range(x.clone()),
                        rng.gen_range(y.clone()),
                        rng.gen_range(z.clone()),
                    ),
                    yaw: rng.gen_range(0.0..std::f32::consts::TAU),
                },
            )
            .with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 })
        })
        .collect()
}

/// Heavy-fragment scenery shared by the arena-style scenes: ground,
/// back wall, and a sky layer — big cheap triangles that dominate the
/// fragment budget like a game's environment pass does.
fn arena_scenery(half: f32, wall_height: f32) -> Vec<SceneObject> {
    let fixed = |mesh: Mesh, p: Vec3| {
        SceneObject::new(mesh, Motion::Static { position: p, yaw: 0.0 })
            .with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 })
    };
    vec![
        fixed(shapes::ground_quad(half, half), Vec3::ZERO),
        // Back wall: a ground quad rotated upright to face the camera.
        fixed(
            shapes::ground_quad(half, wall_height)
                .transformed(&Mat4::rotation_x(std::f32::consts::FRAC_PI_2)),
            Vec3::new(0.0, wall_height, -half),
        ),
        // Sky: a huge quad behind everything.
        fixed(
            shapes::ground_quad(half * 3.0, wall_height * 3.0)
                .transformed(&Mat4::rotation_x(std::f32::consts::FRAC_PI_2)),
            Vec3::new(0.0, wall_height, -half * 1.4),
        ),
    ]
}

/// `cap` — *Captain America* (beat'em up): two high-detail fighters in
/// an arena plus scattered props. Collisionable objects are spread
/// across the screen, so per-pixel collisionable depth stays low
/// (Table 3: 1.57 % overflow at M=4, 0.01 % at 8).
pub fn cap() -> Scene {
    let mut rng = Rng::seed_from_u64(0xCA11AB1E);
    let fighter = Arc::new(shapes::capsule(0.55, 0.9, 48, 24));
    let mut collidables = vec![
        // Two fighters circling each other, clashing periodically.
        SceneObject::new(
            fighter.clone(),
            Motion::Orbit {
                center: Vec3::new(0.0, 1.45, -2.0),
                radius: 0.9,
                angular_speed: 1.2,
                phase: 0.0,
            },
        ),
        SceneObject::new(
            fighter.clone(),
            Motion::Orbit {
                center: Vec3::new(0.0, 1.45, -2.0),
                radius: 0.9,
                angular_speed: 1.2,
                phase: std::f32::consts::PI * 0.92, // near-opposite: grazing contact
            },
        ),
    ];
    // Props spread around the arena.
    let prop_meshes: Vec<Arc<Mesh>> = vec![
        Arc::new(shapes::icosphere(0.45, 3)),
        Arc::new(shapes::cuboid(Vec3::new(0.5, 0.35, 0.5))),
        Arc::new(shapes::star_prism(5, 0.6, 0.28, 0.4)),
        Arc::new(shapes::torus(0.5, 0.18, 24, 16)),
    ];
    let bounds = Aabb::new(Vec3::new(-10.5, 0.4, -12.0), Vec3::new(10.5, 4.6, -2.0));
    for i in 0..28 {
        let mesh = prop_meshes[i % prop_meshes.len()].clone();
        let start = Vec3::new(
            rng.gen_range(-10.0..10.0),
            rng.gen_range(0.5..4.2),
            rng.gen_range(-12.0..-2.0),
        );
        let velocity = Vec3::new(
            rng.gen_range(-1.2..1.2),
            rng.gen_range(-0.6..0.6),
            rng.gen_range(-0.8..0.8),
        );
        let spin = rng.gen_range(-1.0..1.0);
        // Thin or spiky props (stars, rings) render double-sided, as
        // such assets commonly do on mobile.
        let cull = if i % prop_meshes.len() >= 2 {
            rbcd_gpu::CullMode::None
        } else {
            rbcd_gpu::CullMode::Back
        };
        collidables.push(SceneObject::new(
            mesh.clone(),
            Motion::Bounce { start, velocity, bounds, spin },
        ).with_cull(cull));
        // Half the props fly as loose pairs: their AABBs stay in
        // contact, keeping the narrow phase busy every frame like
        // resting contacts do in a real game.
        if i % 2 == 0 {
            collidables.push(SceneObject::new(
                mesh,
                Motion::Bounce {
                    start: start + Vec3::new(0.95, 0.1, 0.0),
                    velocity,
                    bounds,
                    spin: -spin,
                },
            ).with_cull(cull));
        }
    }
    Scene {
        name: "Captain America",
        alias: "cap",
        description: "beat'em up: two fighters and scattered props in an arena",
        collidables,
        scenery: {
            let mut scenery = arena_scenery(12.0, 5.0);
            scenery.extend(decor_field(&mut rng, 60, -11.5..11.5, 0.3..4.5, -11.8..-1.5));
            scenery
        },
        camera: CameraPath::fixed(Vec3::new(0.0, 2.6, 7.0), Vec3::new(0.0, 1.2, -3.0)),
        frames: 24,
        fps: 30.0,
    }
}

/// `crazy` — *Crazy Snowboard* (arcade): a boarder on a large
/// collisionable snow slope with sparse obstacles. The slope covers a
/// large screen area with only two collisionable faces per pixel, so
/// overflow stays low while the RBCD unit sees many fragments per tile —
/// the configuration that provokes the paper's worst single-ZEB stalls
/// (§5.2).
pub fn crazy() -> Scene {
    let mut rng = Rng::seed_from_u64(0x5B0A4D);
    // The active snow-terrain collision window: a finely tessellated
    // strip that slides along with the boarder (games only keep the
    // nearby terrain section registered for collision). Its per-frame
    // refit is the dominant CPU broad-phase cost.
    let slope = Arc::new(shapes::tessellated_slab(Vec3::new(2.4, 0.3, 11.0), 30, 130));
    let boarder = Arc::new(shapes::capsule(0.4, 0.7, 40, 20));
    let tree = Arc::new(shapes::capsule(0.5, 1.6, 20, 10));
    let rock = Arc::new(shapes::icosphere(0.6, 3));
    let speed = 6.0;

    let mut collidables = vec![
        // Terrain draws with culling disabled (double-sided), as mobile
        // engines commonly do — so the baseline already rasterizes both
        // of its faces and deferred culling adds no work for it.
        SceneObject::new(
            slope,
            Motion::Slide {
                start: Vec3::new(0.0, -0.3, -14.0),
                velocity: Vec3::new(0.4, 0.0, -speed),
            },
        )
        .with_cull(rbcd_gpu::CullMode::None),
        // The boarder slides down the slope, weaving.
        SceneObject::new(
            boarder,
            Motion::Slide {
                start: Vec3::new(0.0, 0.9, -6.0),
                velocity: Vec3::new(0.4, 0.0, -speed),
            },
        ),
    ];
    for i in 0..22 {
        let position = Vec3::new(
            rng.gen_range(-2.2..2.2),
            1.2,
            -8.0 - rng.gen_range(0.0..110.0),
        );
        let motion = if i % 3 == 0 {
            Motion::Static { position, yaw: rng.gen_range(0.0..std::f32::consts::TAU) }
        } else {
            // Trees sway gently in the wind.
            Motion::Oscillate {
                center: position,
                amplitude: Vec3::new(rng.gen_range(0.02..0.12), 0.0, 0.0),
                frequency: rng.gen_range(0.3..0.8),
                phase: rng.gen_range(0.0..std::f32::consts::TAU),
            }
        };
        let mesh = if i % 3 == 0 { rock.clone() } else { tree.clone() };
        collidables.push(SceneObject::new(mesh, motion));
    }
    Scene {
        name: "Crazy Snowboard",
        alias: "crazy",
        description: "arcade: boarder on a large collisionable slope with sparse obstacles",
        collidables,
        scenery: {
            let mut forest = decor_field(&mut rng, 40, -16.0..-4.0, 0.6..2.2, -95.0..-6.0);
            forest.extend(decor_field(&mut rng, 40, 4.0..16.0, 0.6..2.2, -95.0..-6.0));
            forest.extend(vec![
            // The far slope: visually identical terrain, but outside
            // the active collision window.
            SceneObject::new(
                shapes::tessellated_slab(Vec3::new(3.0, 0.3, 60.0), 8, 60),
                Motion::Slide {
                    start: Vec3::new(0.0, -0.31, -85.0),
                    velocity: Vec3::new(0.4, 0.0, -speed),
                },
            )
            .with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 }),
            // Snowfields flanking the collision strip: most of the
            // screen's fragments, none of them collisionable.
            SceneObject::new(
                shapes::ground_quad(14.0, 90.0),
                Motion::Slide {
                    start: Vec3::new(-16.9, -0.05, -60.0),
                    velocity: Vec3::new(0.4, 0.0, -speed),
                },
            )
            .with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 }),
            SceneObject::new(
                shapes::ground_quad(14.0, 90.0),
                Motion::Slide {
                    start: Vec3::new(16.9, -0.05, -60.0),
                    velocity: Vec3::new(0.4, 0.0, -speed),
                },
            )
            .with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 }),
            // Distant mountain wall and sky.
            SceneObject::new(
                shapes::ground_quad(120.0, 40.0)
                    .transformed(&Mat4::rotation_x(std::f32::consts::FRAC_PI_2)),
                Motion::Slide {
                    start: Vec3::new(0.0, 20.0, -140.0),
                    velocity: Vec3::new(0.4, 0.0, -speed),
                },
            )
            .with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 }),
            ]);
            forest
        },
        // Camera chases the boarder from behind and above.
        camera: CameraPath::dolly(
            Vec3::new(0.0, 3.2, 0.0),
            Vec3::new(0.4, 0.0, -speed),
            Vec3::new(0.0, -1.6, -9.0),
        ),
        frames: 24,
        fps: 30.0,
    }
}

/// `sleepy` — *Sleepy Jack* (action): a dense swarm of collisionable
/// objects spiralling around the view axis, giving moderate per-pixel
/// collisionable depth (Table 3: 5.87 % at M=4, 0.21 % at 8).
pub fn sleepy() -> Scene {
    let mut rng = Rng::seed_from_u64(0x51EE97);
    let meshes: Vec<Arc<Mesh>> = vec![
        Arc::new(shapes::icosphere(0.55, 3)),
        Arc::new(shapes::torus(0.6, 0.22, 24, 16)),
        Arc::new(shapes::capsule(0.35, 0.5, 24, 12)),
        Arc::new(shapes::star_prism(6, 0.55, 0.25, 0.5)),
    ];
    let mut collidables = Vec::new();
    // Swarm rings at increasing depth; objects within a ring share the
    // screen region around the view axis, stacking moderately in z.
    for ring in 0..7 {
        let depth = -7.0 - ring as f32 * 4.6;
        for k in 0..6 {
            let mesh = meshes[(ring * 6 + k) % meshes.len()].clone();
            // Alternate the angular size per ring: constant angular
            // radii would nest every ring onto the same view cone and
            // stack collisionable surfaces on the same pixels.
            let ring_factor = [0.22, 0.55, 0.34, 0.68, 0.28, 0.61, 0.45][ring % 7];
            let ring_height = [1.2, 2.8, 0.8, 3.4, 1.8, 2.3, 1.0][ring % 7];
            // Rings and stars render double-sided like cap's thin props.
            let cull = if (ring * 6 + k) % meshes.len() % 2 == 1 {
                rbcd_gpu::CullMode::None
            } else {
                rbcd_gpu::CullMode::Back
            };
            collidables.push(SceneObject::new(
                mesh,
                Motion::Orbit {
                    center: Vec3::new(0.0, ring_height, depth),
                    radius: (ring_factor + rng.gen_range(-0.04..0.04)) * (depth - 4.0).abs(),
                    angular_speed: rng.gen_range(0.5..1.6) * if k % 2 == 0 { 1.0 } else { -1.0 },
                    phase: rng.gen_range(0.0..std::f32::consts::TAU),
                },
            ).with_cull(cull));
        }
    }
    Scene {
        name: "Sleepy Jack",
        alias: "sleepy",
        description: "action: a swarm of objects spiralling around the view axis",
        collidables,
        scenery: {
            let mut scenery = arena_scenery(14.0, 6.0);
            scenery.extend(decor_field(&mut rng, 70, -13.0..13.0, 0.3..6.0, -40.0..-36.0));
            scenery.extend(decor_field(&mut rng, 30, -13.0..13.0, 0.3..6.0, -13.5..-11.0));
            scenery
        },
        camera: CameraPath::fixed(Vec3::new(0.0, 1.8, 4.0), Vec3::new(0.0, 1.8, -8.0)),
        frames: 24,
        fps: 30.0,
    }
}

/// `temple` — *Temple Run* (adventure arcade): the camera races down a
/// corridor whose collisionable walls, floor slabs, and obstacle chains
/// line up along the view axis, stacking many collisionable surfaces on
/// the same pixels (Table 3: 16.61 % overflow at M=4, 0.96 % at 8, 0 at
/// 16).
pub fn temple() -> Scene {
    let mut rng = Rng::seed_from_u64(0x7E3A91);
    let speed = 7.0;
    let slab = Arc::new(shapes::tessellated_slab(Vec3::new(1.4, 0.25, 3.6), 20, 40));
    let gate = Arc::new(shapes::torus(2.0, 0.35, 24, 16));
    let obstacle = Arc::new(shapes::cuboid(Vec3::new(0.8, 0.8, 0.5)));
    let idol = Arc::new(shapes::icosphere(0.5, 3));

    let mut collidables = Vec::new();
    // The runner.
    collidables.push(SceneObject::new(
        Arc::new(shapes::capsule(0.4, 0.7, 36, 18)),
        Motion::Slide {
            start: Vec3::new(0.0, 1.2, -5.0),
            velocity: Vec3::new(0.0, 0.0, -speed),
        },
    ));
    // Floor slabs and gates along the corridor: seen nearly edge-on,
    // they stack front/back faces on the horizon pixels.
    // Only the slabs and gates near the runner are in the active
    // collision set (the game collides nearby obstacles only); the far
    // corridor repeats the same geometry as scenery.
    let mut far_scenery: Vec<SceneObject> = Vec::new();
    for i in 0..10 {
        let z = -8.0 - i as f32 * 7.5;
        // Stagger the slabs laterally and vertically so distant segments
        // do not all converge on the same horizon pixels.
        let dx = if i % 2 == 0 { 0.5 } else { -0.5 };
        let dy = 0.12 * (i % 3) as f32;
        // Slabs render double-sided like the slope terrain in `crazy`.
        let slab_obj = SceneObject::new(
            slab.clone(),
            Motion::Static { position: Vec3::new(dx, dy, z), yaw: 0.0 },
        )
        .with_cull(rbcd_gpu::CullMode::None);
        if i < 4 {
            collidables.push(slab_obj);
        } else {
            far_scenery.push(slab_obj.with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 }));
        }
        if i % 3 == 0 {
            let gate_obj = SceneObject::new(
                gate.clone(),
                Motion::Static { position: Vec3::new(-dx, 1.8, z - 3.0), yaw: 0.0 },
            );
            if i < 4 {
                collidables.push(gate_obj);
            } else {
                far_scenery.push(gate_obj.with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 }));
            }
        }
    }
    // Obstacle chains hovering in the middle of the corridor; the far
    // half belongs to the scenery pass like the far slabs do.
    let mut far_obstacles: Vec<SceneObject> = Vec::new();
    for i in 0..12 {
        let mesh = if i % 4 == 0 { idol.clone() } else { obstacle.clone() };
        let obj = SceneObject::new(
            mesh,
            Motion::Oscillate {
                center: Vec3::new(
                    rng.gen_range(-1.6..1.6),
                    rng.gen_range(0.8..2.6),
                    -10.0 - i as f32 * 6.4,
                ),
                amplitude: Vec3::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..0.5), 0.0),
                frequency: rng.gen_range(0.2..0.7),
                phase: rng.gen_range(0.0..std::f32::consts::TAU),
            },
        );
        if i < 6 {
            collidables.push(obj);
        } else {
            far_obstacles.push(obj.with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 }));
        }
    }
    let far_scenery: Vec<SceneObject> = far_scenery.into_iter().chain(far_obstacles).collect();
    Scene {
        name: "Temple Run",
        alias: "temple",
        description: "adventure arcade: obstacle chains lined up along a corridor",
        collidables,
        scenery: {
            let mut scenery = far_scenery;
            scenery.extend(decor_field(&mut rng, 30, -3.1..-2.3, 0.2..4.0, -78.0..-4.0));
            scenery.extend(decor_field(&mut rng, 30, 2.3..3.1, 0.2..4.0, -78.0..-4.0));
            scenery.extend(vec![
            // Wide scenery floor beneath the collisionable slabs.
            SceneObject::new(
                shapes::ground_quad(16.0, 90.0),
                Motion::Slide {
                    start: Vec3::new(0.0, -0.6, -60.0),
                    velocity: Vec3::new(0.0, 0.0, -speed),
                },
            )
            .with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 }),
            // Corridor side walls converge at the horizon.
            SceneObject::new(
                shapes::ground_quad(2.8, 120.0),
                Motion::Slide {
                    start: Vec3::new(-3.2, 2.0, -60.0),
                    velocity: Vec3::new(0.0, 0.0, -speed),
                },
            )
            .with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 }),
            SceneObject::new(
                shapes::ground_quad(2.8, 120.0),
                Motion::Slide {
                    start: Vec3::new(3.2, 2.0, -60.0),
                    velocity: Vec3::new(0.0, 0.0, -speed),
                },
            )
            .with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 }),
            // Sky at the end of the corridor.
            SceneObject::new(
                shapes::ground_quad(60.0, 40.0)
                    .transformed(&Mat4::rotation_x(std::f32::consts::FRAC_PI_2)),
                Motion::Slide {
                    start: Vec3::new(0.0, 10.0, -130.0),
                    velocity: Vec3::new(0.0, 0.0, -speed),
                },
            )
            .with_shader(ShaderCost { vertex_cycles: 6, fragment_cycles: 12 }),
            ]);
            scenery
        },
        camera: {
            let mut path = CameraPath::dolly(
                Vec3::new(0.0, 2.4, 0.0),
                Vec3::new(0.0, 0.0, -speed),
                Vec3::new(0.0, -0.8, -10.0),
            );
            // Short draw distance: the corridor fades out like the real
            // game's fog, bounding how many segments stack per pixel.
            path.far = 80.0;
            path
        },
        frames: 24,
        fps: 30.0,
    }
}

/// `shells` — adversarial overflow stress (not part of the paper's
/// Table 2 suite): concentric collisionable shells centred on the view
/// axis, so one pixel column crosses every shell and stacks 2 surfaces
/// per shell. At the centre of the screen the collisionable depth
/// complexity exceeds 20 — far past any Table 3 design point — which
/// makes the scene the workload of choice for the fault-injection
/// harness and the ZEB degradation ladder (`repro --faults`).
pub fn shells() -> Scene {
    let mut rng = Rng::seed_from_u64(0x0F10_0DED);
    let mut collidables = Vec::new();
    // Ten nested breathing shells: each pair of neighbours overlaps in
    // depth for part of the clip, so the oracle pair set stays rich.
    for i in 0..10u32 {
        let radius = 0.5 + i as f32 * 0.35;
        collidables.push(SceneObject::new(
            shapes::icosphere(radius, 2),
            Motion::Oscillate {
                center: Vec3::new(0.0, 1.5, -6.0),
                amplitude: Vec3::new(0.12 * (i % 3) as f32, 0.08 * (i % 2) as f32, 0.0),
                frequency: 0.4 + 0.15 * (i % 4) as f32,
                phase: rng.gen_range(0.0..std::f32::consts::TAU),
            },
        ));
    }
    // A handful of intruders orbiting through the shell stack, crossing
    // surfaces every frame.
    for k in 0..6u32 {
        collidables.push(SceneObject::new(
            shapes::cuboid(Vec3::splat(0.3 + 0.05 * (k % 3) as f32)),
            Motion::Orbit {
                center: Vec3::new(0.0, 1.5, -6.0),
                radius: 0.8 + 0.4 * k as f32,
                angular_speed: rng.gen_range(0.6..1.8) * if k % 2 == 0 { 1.0 } else { -1.0 },
                phase: rng.gen_range(0.0..std::f32::consts::TAU),
            },
        ));
    }
    Scene {
        name: "Overflow Gauntlet",
        alias: "shells",
        description: "adversarial: concentric shells stacking >20 collisionable surfaces per pixel",
        collidables,
        scenery: arena_scenery(10.0, 5.0),
        camera: CameraPath::fixed(Vec3::new(0.0, 1.5, 2.5), Vec3::new(0.0, 1.5, -6.0)),
        frames: 24,
        fps: 30.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_paper_benchmarks() {
        let s = suite();
        let aliases: Vec<&str> = s.iter().map(|b| b.alias).collect();
        assert_eq!(aliases, vec!["cap", "crazy", "sleepy", "temple", "sparse"]);
    }

    /// The parallel tile pipeline shares scenes and traces across
    /// worker threads; keep that a compile-time guarantee.
    #[test]
    fn scenes_and_traces_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Scene>();
        assert_send_sync::<rbcd_gpu::FrameTrace>();
        assert_send_sync::<rbcd_gpu::DrawCommand>();
    }

    #[test]
    fn scenes_are_deterministic() {
        let a = temple();
        let b = temple();
        assert_eq!(a.collidable_transforms(5), b.collidable_transforms(5));
        assert_eq!(a.collidables.len(), b.collidables.len());
    }

    #[test]
    fn every_scene_has_collidables_and_scenery() {
        for s in suite() {
            assert!(s.collidables.len() >= 10, "{}: too few collidables", s.alias);
            assert!(!s.scenery.is_empty(), "{}: no scenery", s.alias);
            assert!(s.frames > 0);
            assert!(s.collidable_triangles() > 1000, "{}: too little geometry", s.alias);
        }
    }

    #[test]
    fn traces_render_nonempty_frames() {
        use rbcd_gpu::{GpuConfig, NullCollisionUnit, PipelineMode, Simulator};
        use rbcd_math::Viewport;
        for s in suite() {
            let cfg = GpuConfig { viewport: Viewport::new(160, 96), ..GpuConfig::default() };
            let mut sim = Simulator::new(cfg);
            let stats =
                sim.render_frame(&s.frame_trace(0), PipelineMode::Baseline, &mut NullCollisionUnit);
            assert!(
                stats.raster.fragments_rasterized > 500,
                "{}: frame 0 nearly empty ({} frags)",
                s.alias,
                stats.raster.fragments_rasterized
            );
        }
    }

    #[test]
    fn collidables_visible_in_rbcd_mode() {
        use rbcd_gpu::{GpuConfig, NullCollisionUnit, PipelineMode, Simulator};
        use rbcd_math::Viewport;
        for s in suite() {
            let cfg = GpuConfig { viewport: Viewport::new(160, 96), ..GpuConfig::default() };
            let mut sim = Simulator::new(cfg);
            let stats =
                sim.render_frame(&s.frame_trace(0), PipelineMode::Rbcd, &mut NullCollisionUnit);
            assert!(
                stats.raster.fragments_collisionable > 100,
                "{}: no collisionable fragments reach the unit",
                s.alias
            );
            assert!(stats.geometry.triangles_tagged > 0, "{}: nothing tagged", s.alias);
        }
    }

    #[test]
    fn shells_scene_overflows_the_paper_design_point() {
        use rbcd_core::{detect_frame_collisions, RbcdConfig};
        use rbcd_gpu::GpuConfig;
        use rbcd_math::Viewport;
        let scene = shells();
        let gpu = GpuConfig { viewport: Viewport::new(160, 96), ..GpuConfig::default() };
        let result = detect_frame_collisions(&scene.frame_trace(0), &gpu, &RbcdConfig::default());
        assert!(
            result.rbcd_stats.overflows > 0,
            "the adversarial scene must overflow even M = 8"
        );
        assert!(!result.pairs().is_empty(), "shells must still produce pairs");
    }

    #[test]
    fn motion_stays_animated_across_the_clip() {
        for s in suite() {
            let first = s.collidable_transforms(0);
            let last = s.collidable_transforms(s.frames - 1);
            let moved = first
                .iter()
                .zip(&last)
                .filter(|(a, b)| a != b)
                .count();
            // Corridor/slope scenes keep their static props; at least a
            // quarter of the objects must animate.
            assert!(moved * 4 >= first.len(), "{}: too few objects move", s.alias);
        }
    }
}
