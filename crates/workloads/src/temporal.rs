//! Temporal-coherence benchmark scenes (`repro temporal`).
//!
//! Not part of the paper's Table 2 suite: these clips are shaped for
//! the signature-based tile-reuse layer, which pays off when geometry
//! is static or resting under a fixed camera. They are deliberately
//! raster-heavy — low-poly meshes covering large screen areas with
//! expensive fragment shaders — because the geometry pipeline always
//! runs (binning feeds the signatures), so the reusable fraction of a
//! frame is its raster half.

use crate::motion::Motion;
use crate::scene::{CameraPath, Scene, SceneObject};
use rbcd_geometry::{shapes, Mesh};
use rbcd_gpu::ShaderCost;
use rbcd_math::{Mat4, Vec3};
use std::sync::Arc;

/// The temporal-coherence clips, static first.
pub fn temporal_suite() -> Vec<Scene> {
    vec![vault(), atrium(), resting()]
}

/// Expensive fragment work: these scenes model the texture-and-light
/// heavy environment passes whose tiles reuse is meant to skip.
fn heavy(obj: SceneObject) -> SceneObject {
    obj.with_shader(ShaderCost { vertex_cycles: 4, fragment_cycles: 24 })
}

fn fixed(mesh: impl Into<Arc<Mesh>>, position: Vec3) -> SceneObject {
    SceneObject::new(mesh, Motion::Static { position, yaw: 0.0 })
}

/// Big static backdrop: floor and back wall filling most of the screen
/// with cheap triangles and expensive fragments.
fn backdrop(half: f32, wall_height: f32) -> Vec<SceneObject> {
    vec![
        heavy(fixed(shapes::ground_quad(half, half), Vec3::ZERO)),
        heavy(fixed(
            shapes::ground_quad(half, wall_height)
                .transformed(&Mat4::rotation_x(std::f32::consts::FRAC_PI_2)),
            Vec3::new(0.0, wall_height, -half),
        )),
    ]
}

/// `vault` — a fully static warehouse: three stacks of slightly
/// interpenetrating crates (permanent resting contacts, so the pair
/// set is never empty) under a fixed camera. After the first frame
/// every tile's signature matches and the whole raster pass replays
/// from the cache — the best case for temporal coherence.
pub fn vault() -> Scene {
    let crate_mesh = Arc::new(shapes::cuboid(Vec3::new(0.6, 0.6, 0.6)));
    let mut collidables = Vec::new();
    // Crates stacked at 1.15 spacing against a 1.2 height: each pair of
    // vertical neighbours interpenetrates by 0.05.
    for (sx, count) in [(-2.4f32, 3usize), (0.0, 4), (2.4, 2)] {
        for level in 0..count {
            collidables.push(fixed(
                crate_mesh.clone(),
                Vec3::new(sx, 0.6 + level as f32 * 1.15, -2.0),
            ));
        }
    }
    Scene {
        name: "Vault",
        alias: "vault",
        description: "temporal: static crate stacks in resting contact, fixed camera",
        collidables,
        scenery: backdrop(10.0, 6.0),
        camera: CameraPath::fixed(Vec3::new(0.0, 2.6, 7.5), Vec3::new(0.0, 2.0, -2.0)),
        frames: 8,
        fps: 30.0,
    }
}

/// `atrium` — static, large-coverage geometry: overlapping spheres and
/// a torus resting on a dais, framed by wide fragment-heavy walls. A
/// second fully static clip with different mesh topology, so the
/// temporal geomean is not a single scene measured twice.
pub fn atrium() -> Scene {
    let mut collidables = vec![
        fixed(shapes::icosphere(1.0, 2), Vec3::new(-0.7, 1.0, -3.0)),
        fixed(shapes::icosphere(1.0, 2), Vec3::new(0.8, 1.0, -3.0)),
        fixed(shapes::torus(1.1, 0.3, 16, 10), Vec3::new(0.0, 0.4, -3.0)),
    ];
    // A ring of pillars in grazing contact with their neighbours.
    for k in 0..6 {
        let a = k as f32 / 6.0 * std::f32::consts::TAU;
        collidables.push(fixed(
            shapes::cuboid(Vec3::new(0.45, 1.6, 0.45)),
            Vec3::new(a.cos() * 3.4, 1.6, -3.0 + a.sin() * 2.2),
        ));
    }
    Scene {
        name: "Atrium",
        alias: "atrium",
        description: "temporal: static spheres, torus and pillars under a fixed camera",
        collidables,
        scenery: backdrop(12.0, 7.0),
        camera: CameraPath::fixed(Vec3::new(0.0, 3.2, 8.0), Vec3::new(0.0, 1.4, -3.0)),
        frames: 8,
        fps: 30.0,
    }
}

/// `resting` — a static pile plus one oscillating ball: the moving
/// object invalidates only the tiles it crosses, so most of the frame
/// still replays from the cache while the pair set keeps changing.
/// The partial-reuse case the invalidation rules are tested against.
pub fn resting() -> Scene {
    let mut collidables = vec![
        // A resting row of interpenetrating spheres.
        fixed(shapes::icosphere(0.8, 2), Vec3::new(-1.5, 0.8, -2.5)),
        fixed(shapes::icosphere(0.8, 2), Vec3::new(0.0, 0.8, -2.5)),
        fixed(shapes::icosphere(0.8, 2), Vec3::new(1.5, 0.8, -2.5)),
    ];
    // One ball sways through the right edge of the row, touching and
    // releasing the rightmost sphere each period.
    collidables.push(SceneObject::new(
        shapes::icosphere(0.7, 2),
        Motion::Oscillate {
            center: Vec3::new(3.0, 0.9, -2.5),
            amplitude: Vec3::new(0.6, 0.0, 0.0),
            frequency: 1.5,
            phase: 0.0,
        },
    ));
    Scene {
        name: "Resting Contact",
        alias: "resting",
        description: "temporal: resting sphere row with one oscillating intruder",
        collidables,
        scenery: backdrop(10.0, 6.0),
        camera: CameraPath::fixed(Vec3::new(0.0, 2.2, 7.0), Vec3::new(0.0, 1.0, -2.5)),
        frames: 8,
        fps: 30.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temporal_suite_is_static_first() {
        let aliases: Vec<&str> = temporal_suite().iter().map(|s| s.alias).collect();
        assert_eq!(aliases, vec!["vault", "atrium", "resting"]);
    }

    #[test]
    fn static_scenes_never_move() {
        for s in [vault(), atrium()] {
            assert_eq!(
                s.collidable_transforms(0),
                s.collidable_transforms(s.frames - 1),
                "{}: every object must be static",
                s.alias
            );
        }
    }

    #[test]
    fn resting_moves_exactly_one_object() {
        let s = resting();
        let first = s.collidable_transforms(0);
        let last = s.collidable_transforms(s.frames - 1);
        let moved = first.iter().zip(&last).filter(|(a, b)| a != b).count();
        assert_eq!(moved, 1, "only the intruder animates");
    }

    #[test]
    fn temporal_scenes_produce_pairs_and_fragments() {
        use rbcd_core::{detect_frame_collisions, RbcdConfig};
        use rbcd_gpu::GpuConfig;
        use rbcd_math::Viewport;
        for s in temporal_suite() {
            let gpu = GpuConfig { viewport: Viewport::new(160, 96), ..GpuConfig::default() };
            let result =
                detect_frame_collisions(&s.frame_trace(0), &gpu, &RbcdConfig::default());
            assert!(!result.pairs().is_empty(), "{}: resting contacts must collide", s.alias);
            assert!(
                result.gpu_stats.raster.fragments_rasterized > 500,
                "{}: scene must be raster-heavy",
                s.alias
            );
        }
    }
}
