//! The paper's Figure 2 accuracy scenario: a concave body `A` with a
//! small box `B` in its AABB-only region and a small sphere `C` inside
//! its convex hull — AABB flags both, GJK-on-hull still flags `C`, and
//! RBCD (operating on the discretized true surface) flags neither,
//! matching the exact geometric ground truth.
//!
//! ```text
//! cargo run --release --example accuracy_shapes
//! ```

use rbcd_bench::accuracy::{false_positive_counts, figure2_verdicts};
use rbcd_gpu::GpuConfig;
use rbcd_math::Viewport;

fn main() {
    println!("Figure 2 — collision verdicts around a concave L-prism\n");
    println!("  A = concave L-prism (object 1)");
    println!("  B = small cube in the notch corner: inside A's AABB only (object 2)");
    println!("  C = small sphere inside A's convex hull, off its surface (object 3)\n");

    for (label, width, height) in [
        ("WVGA 800x480 (paper resolution)", 800u32, 480u32),
        ("quarter resolution 400x240", 400, 240),
    ] {
        let gpu = GpuConfig {
            viewport: Viewport::new(width, height),
            ..GpuConfig::default()
        };
        let verdicts = figure2_verdicts(&gpu);
        println!("--- {label} ---");
        println!("{:>8}  {:>6}  {:>8}  {:>6}  {:>6}", "pair", "AABB", "GJK-hull", "RBCD", "exact");
        for v in &verdicts {
            let yn = |b: bool| if b { "HIT" } else { "-" };
            println!(
                "{:>8}  {:>6}  {:>8}  {:>6}  {:>6}",
                format!("({},{})", v.pair.0, v.pair.1),
                yn(v.aabb),
                yn(v.gjk),
                yn(v.rbcd),
                yn(v.exact)
            );
        }
        let (aabb_fp, gjk_fp, rbcd_fp) = false_positive_counts(&verdicts);
        println!("false positives — AABB: {aabb_fp}, GJK: {gjk_fp}, RBCD: {rbcd_fp}\n");
        assert_eq!(rbcd_fp, 0, "RBCD must add no false collisions");
        assert!(aabb_fp >= gjk_fp, "hull is tighter than the AABB");
        assert!(gjk_fp >= 1, "the hull still over-approximates the concave body");
    }

    println!("As in the paper: the broad phase's AABB is the loosest shape, the");
    println!("convex hull removes only part of the false-collisionable area, and");
    println!("RBCD's pixel-level discretized surface removes the rest — with the");
    println!("false-collisionable band shrinking as rendering resolution grows.");
}
