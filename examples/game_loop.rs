//! The §3.6 animation loop, both ways: falling debris resolved with
//! conventional CPU collision detection versus RBCD pairs reported by
//! the GPU render of the previous frame (the paper's Figure 7).
//!
//! Prints, per configuration, the physics outcome and the CPU cycles the
//! time step spent on collision detection — the work RBCD removes.
//!
//! ```text
//! cargo run --release --example game_loop
//! ```

use rbcd_core::RbcdUnit;
use rbcd_core::RbcdConfig;
use rbcd_cpu_cd::Phase;
use rbcd_gpu::{Camera, DrawCommand, FrameTrace, GpuConfig, ObjectId, PipelineMode, Simulator};
use rbcd_geometry::shapes;
use rbcd_math::{Vec3, Viewport};
use rbcd_physics::{GameLoop, PhysicsWorld, RigidBody};

const FRAMES: usize = 240;
const DT: f32 = 1.0 / 60.0;

fn debris_world() -> PhysicsWorld {
    let mut world = PhysicsWorld::with_ground(0.0);
    // A column of mixed debris dropped from height; pieces collide with
    // each other and the ground.
    let meshes = [
        shapes::icosphere(0.45, 2),
        shapes::cube(0.4),
        shapes::capsule(0.3, 0.4, 12, 6),
        shapes::torus(0.45, 0.18, 12, 8),
    ];
    for i in 0..8 {
        let mesh = meshes[i % meshes.len()].clone();
        let x = (i as f32 * 0.37).sin() * 0.6;
        let z = (i as f32 * 0.83).cos() * 0.6;
        world.add_body(
            RigidBody::new(mesh, Vec3::new(x, 1.5 + i as f32 * 0.8, z), 1.0)
                .with_restitution(0.25),
        );
    }
    world
}

fn main() {
    // --- Configuration A: conventional loop, CD on the CPU ----------
    let mut cpu_game = GameLoop::with_cpu_cd(debris_world()).expect("meshes are hullable");
    let mut cpu_cd_cycles: u64 = 0;
    let mut cpu_collisions = 0usize;
    for _ in 0..FRAMES {
        let report = cpu_game.step_with_cpu_cd(DT, Phase::BroadAndNarrow);
        cpu_collisions += report.pairs.len();
        cpu_cd_cycles += report.cd_cost.expect("cpu loop reports cost").cycles();
    }

    // --- Configuration B: RBCD loop — detection rides the render ----
    let mut rbcd_game = GameLoop::with_external_cd(debris_world());
    let gpu = GpuConfig { viewport: Viewport::new(400, 240), ..GpuConfig::default() };
    let mut sim = Simulator::new(gpu.clone());
    let mut unit = RbcdUnit::new(RbcdConfig::default(), gpu.tile_size).unwrap();
    let camera = Camera::perspective(Vec3::new(0.0, 4.0, 14.0), Vec3::new(0.0, 2.0, 0.0), 1.0, 0.1, 100.0);

    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut rbcd_collisions = 0usize;
    for _ in 0..FRAMES {
        // Time step: respond to the pairs the *previous* render reported.
        let report = rbcd_game.step_with_reported_pairs(DT, &pairs);
        rbcd_collisions += report.pairs.len();
        assert!(report.cd_cost.is_none(), "no CPU CD work in the RBCD loop");

        // Render: the RBCD unit detects this frame's collisions for free.
        let draws: Vec<DrawCommand> = rbcd_game
            .world
            .bodies()
            .iter()
            .enumerate()
            .map(|(i, b)| {
                DrawCommand::collidable(b.mesh.clone(), ObjectId::new(i as u16 + 1))
                    .with_model(b.model())
            })
            .collect();
        unit.new_frame();
        sim.render_frame(&FrameTrace::new(camera, draws), PipelineMode::Rbcd, &mut unit);
        pairs = unit
            .take_contacts()
            .iter()
            .map(|c| {
                let (a, b) = c.pair();
                (a.get() as usize - 1, b.get() as usize - 1)
            })
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
    }

    // --- Compare ------------------------------------------------------
    let settled = |world: &PhysicsWorld| {
        world
            .bodies()
            .iter()
            .filter(|b| b.position.y < 2.0 && b.linear_velocity.length() < 1.5)
            .count()
    };
    println!("{FRAMES} frames of falling debris, {} bodies\n", cpu_game.world.bodies().len());
    println!("conventional loop (CPU broad+GJK CD in every time step):");
    println!("  pair resolutions: {cpu_collisions}");
    println!("  CPU cycles spent on CD: {cpu_cd_cycles} ({:.2} ms at 1.5 GHz)",
        cpu_cd_cycles as f64 / 1.5e9 * 1e3);
    println!("  bodies settled near the ground: {}/8", settled(&cpu_game.world));
    println!();
    println!("RBCD loop (pairs reported by the GPU render, one frame latent):");
    println!("  pair resolutions: {rbcd_collisions}");
    println!("  CPU cycles spent on CD: 0");
    println!("  RBCD pairs emitted by the unit: {}", unit.stats().pairs_emitted);
    println!("  bodies settled near the ground: {}/8", settled(&rbcd_game.world));
    println!();
    println!("Both loops produce a settled pile; the RBCD loop did it without");
    println!("spending a single CPU cycle on collision detection (§3.6, Fig. 7).");
}
