//! ZEB list-length sensitivity on a stress scene (the paper's §5.3):
//! sweep `M` over a configuration with deliberately deep per-pixel
//! collisionable stacks and watch the overflow rate fall — and the pair
//! set stay complete — as the lists grow.
//!
//! ```text
//! cargo run --release --example overflow_sensitivity
//! ```

use rbcd_core::{detect_frame_collisions, RbcdConfig};
use rbcd_geometry::shapes;
use rbcd_gpu::{Camera, DrawCommand, FrameTrace, GpuConfig, ObjectId};
use rbcd_math::{Mat4, Vec3, Viewport};

/// A worst-case stack: shells nested along the view axis, so central
/// pixels see every shell's entry and exit.
fn nested_shell_trace() -> FrameTrace {
    let camera = Camera::perspective(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, 1.0, 0.1, 100.0);
    let mut draws = Vec::new();
    for i in 0..7u16 {
        let r = 0.4 + i as f32 * 0.35;
        draws.push(
            DrawCommand::collidable(shapes::icosphere(r, 2), ObjectId::new(i + 1))
                .with_model(Mat4::translation(Vec3::new(0.0, 0.0, -(i as f32) * 0.05))),
        );
    }
    FrameTrace::new(camera, draws)
}

fn main() {
    let gpu = GpuConfig {
        viewport: Viewport::new(320, 200),
        ..GpuConfig::default()
    };
    let trace = nested_shell_trace();

    // Reference: lists long enough that nothing can overflow.
    let reference = detect_frame_collisions(
        &trace,
        &gpu,
        &RbcdConfig { list_capacity: 64, ff_stack_capacity: 64, ..RbcdConfig::default() },
    );
    let reference_pairs = reference.pairs();
    println!("seven nested shells; no-overflow reference finds {} pairs\n", reference_pairs.len());
    println!("{:>4}  {:>10}  {:>10}  {:>12}  {:>10}", "M", "insertions", "overflows", "overflow %", "pairs");

    for m in [2usize, 4, 6, 8, 12, 16, 24] {
        let run = detect_frame_collisions(
            &trace,
            &gpu,
            &RbcdConfig { list_capacity: m, ff_stack_capacity: m.max(8), ..RbcdConfig::default() },
        );
        let s = run.rbcd_stats;
        let pairs = run.pairs();
        println!(
            "{m:>4}  {:>10}  {:>10}  {:>11.2}%  {:>6}/{}",
            s.insertions,
            s.overflows,
            s.overflow_rate() * 100.0,
            pairs.len(),
            reference_pairs.len(),
        );
        // Overflow can lose overlaps but must never invent them.
        assert!(pairs.is_subset(&reference_pairs));
    }

    println!("\nAs M grows the overflow rate collapses; the paper found M = 8");
    println!("keeps overflow under 1% on its benchmarks while an M this small");
    println!("still detects every collision thanks to the many pixels each");
    println!("object pair overlaps (§5.3). The nested-shell stress case here");
    println!("is deliberately harder than any of the four game workloads.");
}
