//! Quickstart: detect collisions for one frame with the RBCD unit.
//!
//! Builds a tiny scene — two interpenetrating spheres, one separated cube
//! — renders it once through the tile-based GPU simulator with the RBCD
//! unit attached, and prints the colliding pairs along with the unit's
//! hardware activity.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rbcd_core::{detect_frame_collisions, RbcdConfig};
use rbcd_geometry::shapes;
use rbcd_gpu::{Camera, DrawCommand, FrameTrace, GpuConfig, ObjectId};
use rbcd_math::{Mat4, Vec3};

fn main() {
    // A camera five units back, looking at the origin.
    let camera = Camera::perspective(Vec3::new(0.0, 1.0, 6.0), Vec3::ZERO, 1.0, 0.1, 100.0);

    // Two spheres overlapping at the origin, a cube far to the right.
    let sphere = shapes::icosphere(1.0, 3);
    let draws = vec![
        DrawCommand::collidable(sphere.clone(), ObjectId::new(1)),
        DrawCommand::collidable(sphere.clone(), ObjectId::new(2))
            .with_model(Mat4::translation(Vec3::new(1.2, 0.2, 0.0))),
        DrawCommand::collidable(shapes::cube(0.6), ObjectId::new(3))
            .with_model(Mat4::translation(Vec3::new(4.0, 0.0, 0.0))),
        // Non-collisionable scenery never reaches the RBCD unit.
        DrawCommand::scenery(shapes::ground_quad(20.0, 20.0))
            .with_model(Mat4::translation(Vec3::new(0.0, -1.5, 0.0))),
    ];
    let trace = FrameTrace::new(camera, draws);

    // The paper's design point: 16×16 tiles, two 8 KB ZEBs (M = 8).
    let gpu = GpuConfig::default();
    let rbcd = RbcdConfig::default();
    let result = detect_frame_collisions(&trace, &gpu, &rbcd);

    println!("colliding pairs: {:?}", result.pairs());
    println!("contact points reported: {}", result.contacts.len());
    if let Some(c) = result.contacts.first() {
        println!(
            "first contact: objects ({}, {}) at pixel ({}, {}), depth {}",
            c.a, c.b, c.x, c.y, c.depth
        );
    }

    let s = &result.rbcd_stats;
    println!("\nRBCD unit activity for the frame:");
    println!("  fragments inserted into ZEB lists: {}", s.insertions);
    println!("  list overflows (M = {}):           {}", rbcd.list_capacity, s.overflows);
    println!("  pixel lists scanned:               {}", s.lists_scanned);
    println!("  colliding pairs emitted:           {}", s.pairs_emitted);
    println!("  insertion cycles:                  {}", s.insert_cycles);
    println!("  z-overlap scan cycles:             {}", s.scan_cycles);

    let g = &result.gpu_stats;
    println!("\nGPU pipeline for the frame:");
    println!("  triangles assembled:   {}", g.geometry.triangles_assembled);
    println!("  tagged-to-be-culled:   {}", g.geometry.triangles_tagged);
    println!("  fragments rasterized:  {}", g.raster.fragments_rasterized);
    println!("  fragments to RBCD:     {}", g.raster.fragments_collisionable);
    println!("  total GPU cycles:      {}", g.total_cycles());

    assert!(result.pairs().contains(&(ObjectId::new(1), ObjectId::new(2))));
    println!("\nspheres 1 and 2 collide; cube 3 is clear — as expected.");
}
