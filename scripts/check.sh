#!/usr/bin/env bash
# Full local gate: lint, build, test, and two end-to-end smoke runs.
#
# The parallel smoke exercises the threaded tile pipeline end to end
# (repro --smoke --threads 2), which cross-checks that parallel and
# sequential simulation produce bit-identical results and writes
# BENCH_tile_pipeline.json with measured host throughput. The fault
# smoke (repro --smoke --faults all --threads 2) injects every fault
# class at tiny M and fails on panics or silent pair losses, writing
# BENCH_fault_tolerance.json.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace --quiet

echo "== parallel pipeline smoke (repro --smoke --threads 2) =="
./target/release/repro --smoke --threads 2

echo "== fault injection smoke (repro --smoke --faults all --threads 2) =="
./target/release/repro --smoke --faults all --threads 2

echo "OK: lint + build + tests + smokes all passed"
