#!/usr/bin/env bash
# Full local gate: lint, build, test, and two end-to-end smoke runs.
#
# The parallel smoke exercises the threaded tile pipeline end to end
# (repro --smoke --threads 2), which cross-checks that parallel and
# sequential simulation produce bit-identical results and writes
# BENCH_tile_pipeline.json with measured host throughput. The fault
# smoke (repro --smoke --faults all --threads 2) injects every fault
# class at tiny M and fails on panics or silent pair losses, writing
# BENCH_fault_tolerance.json.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace --quiet

echo "== parallel pipeline smoke (repro --smoke --threads 2) =="
./target/release/repro --smoke --threads 2

echo "== fault injection smoke (repro --smoke --faults all --threads 2) =="
./target/release/repro --smoke --faults all --threads 2

echo "== trace smoke (repro --smoke --frames 2 --trace) =="
# Renders two traced frames, re-parses the Chrome JSON with the crate's
# own parser, and cross-checks heatmap totals against the unit's
# counters; repro exits non-zero if anything disagrees. Then make sure
# the artifacts actually landed and are non-empty.
trace_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir"' EXIT
./target/release/repro --smoke --frames 2 --trace "$trace_dir/trace.json"
for f in trace.json trace.occupancy.csv trace.overflows.csv trace.scan_cycles.csv trace.pairs.csv trace.rung.csv; do
  [ -s "$trace_dir/$f" ] || { echo "trace smoke: missing or empty $f"; exit 1; }
done
grep -q '"traceEvents"' "$trace_dir/trace.json" || { echo "trace smoke: no traceEvents key"; exit 1; }

echo "OK: lint + build + tests + smokes all passed"
