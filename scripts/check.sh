#!/usr/bin/env bash
# Full local gate: lint, build, test, and two end-to-end smoke runs.
#
# The parallel smoke exercises the threaded tile pipeline end to end
# (repro --smoke --threads 2), which cross-checks that parallel and
# sequential simulation produce bit-identical results and writes
# BENCH_tile_pipeline.json with measured host throughput. The fault
# smoke (repro --smoke --faults all --threads 2) injects every fault
# class at tiny M and fails on panics or silent pair losses, writing
# BENCH_fault_tolerance.json. The temporal smoke renders static clips
# with tile reuse off vs on and fails unless results are bit-identical
# and the cache actually replayed tiles
# (BENCH_temporal_coherence.json). The frontend smoke A/Bs the
# incremental geometry front-end against a full rebuild and fails on
# any divergence or wall-clock regression
# (BENCH_geometry_frontend.json). The broad-phase smoke A/Bs the
# screen-space broad phase against an unpruned run and fails on any
# divergence or wall-clock regression (BENCH_broadphase.json). The
# overload smoke sweeps the
# frame-deadline governor down to a 25% cycle budget under the storm
# fault plan (repro exits non-zero on any budget violation or silent
# oracle miss) and re-runs it at 1/2/4 threads, requiring byte-identical
# BENCH_overload.json artifacts. The serve smoke pushes 8 staggered
# sessions through the multi-session scheduler at 1/2/4 workers and
# requires zero cross-session interference, a leak-free admission
# ledger, and a byte-identical report (modulo host_* wall-clock lines)
# across thread counts.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace --quiet

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== parallel pipeline smoke (repro --smoke --threads 2) =="
./target/release/repro --smoke --threads 2

echo "== fault injection smoke (repro --smoke --faults all --threads 2) =="
./target/release/repro --smoke --faults all --threads 2

echo "== trace smoke (repro --smoke --frames 2 --trace) =="
# Renders two traced frames, re-parses the Chrome JSON with the crate's
# own parser, and cross-checks heatmap totals against the unit's
# counters; repro exits non-zero if anything disagrees. Then make sure
# the artifacts actually landed and are non-empty.
trace_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir"' EXIT
./target/release/repro --smoke --frames 2 --trace "$trace_dir/trace.json"
for f in trace.json trace.occupancy.csv trace.overflows.csv trace.scan_cycles.csv trace.pairs.csv trace.rung.csv trace.reuse.csv trace.scan_skipped.csv trace.shed.csv trace.splice.csv trace.broadphase.csv; do
  [ -s "$trace_dir/$f" ] || { echo "trace smoke: missing or empty $f"; exit 1; }
done
grep -q '"traceEvents"' "$trace_dir/trace.json" || { echo "trace smoke: no traceEvents key"; exit 1; }

echo "== temporal coherence smoke (repro --smoke temporal --threads 2) =="
# Renders the static clips twice (reuse off, then on); repro exits
# non-zero if reuse changes a pair set or an rbcd.* counter. On top of
# that, assert the cache actually fired: a static scene rendered twice
# must replay tiles.
./target/release/repro --smoke temporal --threads 2
[ -s BENCH_temporal_coherence.json ] || { echo "coherence smoke: missing BENCH_temporal_coherence.json"; exit 1; }
grep -q '"identical_results": true' BENCH_temporal_coherence.json \
  || { echo "coherence smoke: reuse-on run was not result-identical"; exit 1; }
if grep -q '"reuse_rate": 0\.000000' BENCH_temporal_coherence.json; then
  echo "coherence smoke: static scenes replayed zero tiles"; exit 1
fi

echo "== hot-path smoke (repro --smoke hotpath) =="
# A/B of the span-mask rasterizer against the retained reference path:
# repro exits non-zero unless pairs, energy, and every shared counter
# are bit-identical, then times both and writes
# BENCH_raster_hotpath.json. On top of that, guard against a wall-clock
# regression: the mask hot path must never be slower than the scalar
# reference it replaced.
./target/release/repro --smoke hotpath
[ -s BENCH_raster_hotpath.json ] || { echo "hotpath smoke: missing BENCH_raster_hotpath.json"; exit 1; }
grep -q '"identical_results": true' BENCH_raster_hotpath.json \
  || { echo "hotpath smoke: mask run was not result-identical"; exit 1; }
geo=$(sed -n 's/.*"speedup_geomean": \([0-9.]*\).*/\1/p' BENCH_raster_hotpath.json)
[ -n "$geo" ] || { echo "hotpath smoke: no speedup_geomean in JSON"; exit 1; }
awk -v g="$geo" 'BEGIN { exit (g >= 1.0) ? 0 : 1 }' \
  || { echo "hotpath smoke: mask path slower than reference (geomean ${geo}x)"; exit 1; }

echo "== geometry front-end smoke (repro --smoke frontend) =="
# A/B of the incremental geometry front-end (per-draw transform/clip/
# bin caching with delta binning) against a full per-frame rebuild:
# repro exits non-zero unless pairs, energy, and every non-geom.*
# counter are bit-identical across thread counts, reuse on/off, fault
# storms, a governed budget, and the batch service, then times both and
# writes BENCH_geometry_frontend.json. On top of that, guard against a
# wall-clock regression: the cached front-end must never be slower than
# the rebuild it skips.
./target/release/repro --smoke frontend
[ -s BENCH_geometry_frontend.json ] || { echo "frontend smoke: missing BENCH_geometry_frontend.json"; exit 1; }
grep -q '"identical_results": true' BENCH_geometry_frontend.json \
  || { echo "frontend smoke: incremental run was not result-identical"; exit 1; }
geo=$(sed -n 's/.*"speedup_geomean": \([0-9.]*\).*/\1/p' BENCH_geometry_frontend.json)
[ -n "$geo" ] || { echo "frontend smoke: no speedup_geomean in JSON"; exit 1; }
awk -v g="$geo" 'BEGIN { exit (g >= 1.0) ? 0 : 1 }' \
  || { echo "frontend smoke: incremental front-end slower than rebuild (geomean ${geo}x)"; exit 1; }

echo "== broad-phase smoke (repro --smoke broadphase) =="
# A/B of the screen-space broad phase (pair-infeasible draw pruning +
# single-occupant tile elision) against a broad-phase-off run: repro
# exits non-zero unless pairs and every non-image-side counter are
# bit-identical across thread counts, reuse on/off, fault storms, a
# governed budget, and the batch service, then times both on the
# sparse-swarm clips and writes BENCH_broadphase.json. On top of that,
# guard against a wall-clock regression: pruning must never be slower
# than rendering everything.
./target/release/repro --smoke broadphase
[ -s BENCH_broadphase.json ] || { echo "broadphase smoke: missing BENCH_broadphase.json"; exit 1; }
grep -q '"identical_results": true' BENCH_broadphase.json \
  || { echo "broadphase smoke: pruned run was not result-identical"; exit 1; }
geo=$(sed -n 's/.*"speedup_geomean": \([0-9.]*\).*/\1/p' BENCH_broadphase.json)
[ -n "$geo" ] || { echo "broadphase smoke: no speedup_geomean in JSON"; exit 1; }
awk -v g="$geo" 'BEGIN { exit (g >= 1.0) ? 0 : 1 }' \
  || { echo "broadphase smoke: broad phase slower than off (geomean ${geo}x)"; exit 1; }

echo "== overload governor smoke (repro --smoke overload) =="
# Sweeps the frame-deadline governor over 100/75/50/25 % cycle budgets
# under the storm fault plan; repro itself exits non-zero on any budget
# violation (a frame overshooting its budget by more than one tile's
# slack) or any silent oracle miss (an unrouted non-shed pair absent
# from the exact partition). On top of that, the governed sweep must be
# deterministic: 1, 2, and 4 worker threads must land byte-identical
# artifacts.
./target/release/repro --smoke overload --threads 1
[ -s BENCH_overload.json ] || { echo "overload smoke: missing BENCH_overload.json"; exit 1; }
grep -q '"budget_violations": 0' BENCH_overload.json \
  || { echo "overload smoke: a frame blew its cycle budget"; exit 1; }
grep -q '"oracle_misses": 0' BENCH_overload.json \
  || { echo "overload smoke: silent oracle misses in the exact partition"; exit 1; }
cp BENCH_overload.json "$trace_dir/overload.1.json"
for t in 2 4; do
  ./target/release/repro --smoke overload --threads "$t"
  cmp -s "$trace_dir/overload.1.json" BENCH_overload.json \
    || { echo "overload smoke: governed sweep diverged at $t threads"; exit 1; }
done

echo "== multi-session service smoke (repro serve --smoke) =="
# Admits 8 staggered sessions (mixed reuse/fault/governor policies) plus
# deliberate over-capacity and empty-clip submissions, serves them at
# 1/2/4 workers, and byte-compares every session's artifact against its
# solo run in-process; repro exits non-zero on any interference or
# ledger leak. On top of that, the report itself must be deterministic:
# after stripping host_* wall-clock lines, runs at 1, 2, and 4 threads
# must land byte-identical BENCH_multi_session.json artifacts.
./target/release/repro serve --smoke --threads 1
[ -s BENCH_multi_session.json ] || { echo "serve smoke: missing BENCH_multi_session.json"; exit 1; }
grep -q '"interference_free": true' BENCH_multi_session.json \
  || { echo "serve smoke: cross-session interference detected"; exit 1; }
grep -q '"leak_free": true' BENCH_multi_session.json \
  || { echo "serve smoke: admission ledger leaked a session"; exit 1; }
grep -v '"host_' BENCH_multi_session.json > "$trace_dir/serve.1.json"
for t in 2 4; do
  ./target/release/repro serve --smoke --threads "$t"
  grep -v '"host_' BENCH_multi_session.json > "$trace_dir/serve.$t.json"
  cmp -s "$trace_dir/serve.1.json" "$trace_dir/serve.$t.json" \
    || { echo "serve smoke: session report diverged at $t threads"; exit 1; }
done

echo "OK: lint + build + tests + smokes all passed"
