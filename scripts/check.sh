#!/usr/bin/env bash
# Full local gate: build, test, and a parallel-pipeline smoke run.
#
# The smoke run exercises the threaded tile pipeline end to end
# (repro --smoke --threads 2), which cross-checks that parallel and
# sequential simulation produce bit-identical results and writes
# BENCH_tile_pipeline.json with measured host throughput.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace --quiet

echo "== parallel pipeline smoke (repro --smoke --threads 2) =="
./target/release/repro --smoke --threads 2

echo "OK: build + tests + parallel smoke all passed"
