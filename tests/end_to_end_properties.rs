//! End-to-end property tests: random scenes through the full
//! GPU + RBCD stack against the software oracle and the CPU baselines.
//!
//! Random scenes come from the workspace's seeded [`Rng`] (the build
//! is offline, so no external property-testing framework).

use rbcd_core::software::OracleUnit;
use rbcd_core::{RbcdConfig, RbcdUnit};
use rbcd_cpu_cd::{CdBody, CpuCollisionDetector, Phase};
use rbcd_geometry::{shapes, Mesh};
use rbcd_gpu::{Camera, DrawCommand, FrameTrace, GpuConfig, ObjectId, PipelineMode, Simulator};
use rbcd_math::{Mat4, Rng, Vec3, Viewport};
use std::sync::Arc;

const CASES: usize = 24;

fn gpu() -> GpuConfig {
    GpuConfig { viewport: Viewport::new(160, 100), ..GpuConfig::default() }
}

#[derive(Debug, Clone)]
struct RandomScene {
    positions: Vec<Vec3>,
    shapes: Vec<u8>,
}

fn random_scene(rng: &mut Rng) -> RandomScene {
    let n = rng.gen_range(2usize..6);
    let positions = (0..n)
        .map(|_| {
            Vec3::new(
                rng.gen_range(-2.5f32..2.5),
                rng.gen_range(-1.5f32..1.5),
                rng.gen_range(-2.0f32..2.0),
            )
        })
        .collect();
    let shapes = (0..6).map(|_| rng.gen_range(0u32..4) as u8).collect();
    RandomScene { positions, shapes }
}

fn mesh_for(kind: u8) -> Arc<Mesh> {
    Arc::new(match kind % 4 {
        0 => shapes::icosphere(0.8, 1),
        1 => shapes::cube(0.7),
        2 => shapes::capsule(0.5, 0.5, 10, 5),
        _ => shapes::torus(0.7, 0.25, 10, 6),
    })
}

fn trace_of(scene: &RandomScene) -> FrameTrace {
    let camera = Camera::perspective(Vec3::new(0.0, 0.5, 8.0), Vec3::ZERO, 1.0, 0.1, 100.0);
    let draws = scene
        .positions
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            DrawCommand::collidable(
                mesh_for(scene.shapes[i % scene.shapes.len()]),
                ObjectId::new(i as u16 + 1),
            )
            .with_model(Mat4::translation(p))
        })
        .collect();
    FrameTrace::new(camera, draws)
}

/// Hardware-model pairs equal oracle pairs on rendered random scenes
/// when lists cannot overflow.
#[test]
fn rendered_hardware_matches_oracle() {
    let mut rng = Rng::seed_from_u64(0x51);
    for _ in 0..CASES {
        let scene = random_scene(&mut rng);
        let trace = trace_of(&scene);
        let cfg = gpu();

        let mut sim = Simulator::new(cfg.clone());
        let mut unit = RbcdUnit::new(
            RbcdConfig { list_capacity: 96, ff_stack_capacity: 96, ..RbcdConfig::default() },
            cfg.tile_size,
        )
        .unwrap();
        sim.render_frame(&trace, PipelineMode::Rbcd, &mut unit);
        if unit.stats().overflows != 0 {
            // The property only holds overflow-free; skip this draw.
            continue;
        }

        let mut sim = Simulator::new(cfg.clone());
        let mut oracle = OracleUnit::new();
        sim.render_frame(&trace, PipelineMode::Rbcd, &mut oracle);
        assert_eq!(unit.pairs(), oracle.pairs());
    }
}

/// The paper's M = 8 configuration never invents pairs relative to the
/// no-overflow configuration.
#[test]
fn default_config_is_a_subset_of_reference() {
    let mut rng = Rng::seed_from_u64(0x52);
    for _ in 0..CASES {
        let scene = random_scene(&mut rng);
        let trace = trace_of(&scene);
        let cfg = gpu();
        let run = |m: usize| {
            let mut sim = Simulator::new(cfg.clone());
            let mut unit = RbcdUnit::new(
                RbcdConfig { list_capacity: m, ff_stack_capacity: m.max(8), ..RbcdConfig::default() },
                cfg.tile_size,
            )
            .unwrap();
            sim.render_frame(&trace, PipelineMode::Rbcd, &mut unit);
            unit.pairs()
        };
        let small = run(8);
        let big = run(96);
        assert!(small.is_subset(&big));
    }
}

/// RBCD pairs are always a subset of the CPU broad phase's pairs: two
/// objects whose surfaces overlap on screen must also have overlapping
/// AABBs.
#[test]
fn rbcd_pairs_within_broad_phase() {
    let mut rng = Rng::seed_from_u64(0x53);
    for _ in 0..CASES {
        let scene = random_scene(&mut rng);
        let trace = trace_of(&scene);
        let result = rbcd_core::detect_frame_collisions(&trace, &gpu(), &RbcdConfig::default());

        let mut det = CpuCollisionDetector::new(
            scene
                .positions
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    CdBody::from_mesh(
                        i as u32 + 1,
                        &mesh_for(scene.shapes[i % scene.shapes.len()]),
                    )
                    .expect("meshes are hullable")
                })
                .collect(),
        );
        let transforms: Vec<Mat4> =
            scene.positions.iter().map(|&p| Mat4::translation(p)).collect();
        let broad: std::collections::BTreeSet<(u16, u16)> = det
            .detect(&transforms, Phase::Broad)
            .pairs
            .into_iter()
            .map(|(a, b)| (a as u16, b as u16))
            .collect();
        let rbcd: std::collections::BTreeSet<(u16, u16)> =
            result.pairs().into_iter().map(|(a, b)| (a.get(), b.get())).collect();
        assert!(rbcd.is_subset(&broad), "rbcd {rbcd:?} escapes broad {broad:?}");
    }
}

/// Baseline and RBCD renders shade the same image for random scenes.
#[test]
fn image_invariance() {
    let mut rng = Rng::seed_from_u64(0x54);
    for _ in 0..CASES {
        let scene = random_scene(&mut rng);
        let trace = trace_of(&scene);
        let cfg = gpu();
        let mut sim = Simulator::new(cfg.clone());
        let base = sim.render_frame(&trace, PipelineMode::Baseline, &mut rbcd_gpu::NullCollisionUnit);
        let mut sim = Simulator::new(cfg.clone());
        let mut unit = RbcdUnit::new(RbcdConfig::default(), cfg.tile_size).unwrap();
        let rbcd = sim.render_frame(&trace, PipelineMode::Rbcd, &mut unit);
        assert_eq!(base.raster.fragments_shaded, rbcd.raster.fragments_shaded);
        assert_eq!(base.raster.fragments_to_early_z, rbcd.raster.fragments_to_early_z);
    }
}
