//! Cross-crate integration tests: GPU simulator + RBCD unit + CPU
//! baselines + workloads, exercised together.

use rbcd_bench::{run_benchmark, runner, RunOptions};
use rbcd_core::software::OracleUnit;
use rbcd_core::{detect_frame_collisions, RbcdConfig, RbcdUnit};
use rbcd_cpu_cd::{CdBody, CpuCollisionDetector, Phase};
use rbcd_geometry::{intersect, shapes};
use rbcd_gpu::{
    Camera, DrawCommand, FrameTrace, GpuConfig, ObjectId, PipelineMode, Simulator,
};
use rbcd_math::{Mat4, Vec3, Viewport};

fn small_gpu() -> GpuConfig {
    GpuConfig { viewport: Viewport::new(192, 120), ..GpuConfig::default() }
}

fn two_body_trace(offset: Vec3) -> FrameTrace {
    let camera = Camera::perspective(Vec3::new(0.0, 1.0, 7.0), Vec3::ZERO, 1.0, 0.1, 100.0);
    FrameTrace::new(
        camera,
        vec![
            DrawCommand::collidable(shapes::icosphere(1.0, 2), ObjectId::new(1)),
            DrawCommand::collidable(shapes::icosphere(1.0, 2), ObjectId::new(2))
                .with_model(Mat4::translation(offset)),
        ],
    )
}

/// RBCD, the CPU narrow phase, and the exact mesh oracle agree on a
/// sweep of separations, away from the touching boundary.
#[test]
fn three_detectors_agree_on_sphere_sweep() {
    for dx in [0.8f32, 1.4, 1.9, 2.5, 3.0, 4.0] {
        let offset = Vec3::new(dx, 0.0, 0.0);
        let expect = dx < 2.0;
        if (dx - 2.0).abs() < 0.2 {
            continue; // touching boundary: tolerance-dependent
        }

        // RBCD.
        let rbcd =
            detect_frame_collisions(&two_body_trace(offset), &small_gpu(), &RbcdConfig::default());
        assert_eq!(!rbcd.pairs().is_empty(), expect, "RBCD at dx = {dx}");

        // CPU broad + narrow.
        let sphere = shapes::icosphere(1.0, 2);
        let mut det = CpuCollisionDetector::new(vec![
            CdBody::from_mesh(1, &sphere).unwrap(),
            CdBody::from_mesh(2, &sphere).unwrap(),
        ]);
        let r = det.detect(&[Mat4::IDENTITY, Mat4::translation(offset)], Phase::BroadAndNarrow);
        assert_eq!(!r.pairs.is_empty(), expect, "GJK at dx = {dx}");

        // Exact surfaces.
        let moved = sphere.transformed(&Mat4::translation(offset));
        assert_eq!(intersect::meshes_intersect(&sphere, &moved), expect, "exact at dx = {dx}");
    }
}

/// The hardware RBCD unit and the software Shinya–Forgue oracle produce
/// the same pair set on a real rendered workload frame (no overflow).
#[test]
fn hardware_unit_matches_software_oracle_on_workload_frame() {
    let scene = rbcd_workloads::cap();
    let gpu = small_gpu();
    let trace = scene.frame_trace(3);

    let mut sim = Simulator::new(gpu.clone());
    let mut unit = RbcdUnit::new(
        RbcdConfig { list_capacity: 64, ff_stack_capacity: 64, ..RbcdConfig::default() },
        gpu.tile_size,
    )
    .unwrap();
    sim.render_frame(&trace, PipelineMode::Rbcd, &mut unit);
    assert_eq!(unit.stats().overflows, 0, "64-entry lists must not overflow");
    let hw = unit.pairs();

    let mut sim = Simulator::new(gpu.clone());
    let mut oracle = OracleUnit::new();
    sim.render_frame(&trace, PipelineMode::Rbcd, &mut oracle);
    assert_eq!(hw, oracle.pairs());
}

/// Deferred face culling must not change the image: the shaded fragment
/// stream is identical between baseline and RBCD renders.
#[test]
fn rbcd_mode_preserves_the_image() {
    for scene in rbcd_workloads::suite() {
        let gpu = small_gpu();
        let trace = scene.frame_trace(0);
        let mut sim = Simulator::new(gpu.clone());
        let base =
            sim.render_frame(&trace, PipelineMode::Baseline, &mut rbcd_gpu::NullCollisionUnit);
        let mut sim = Simulator::new(gpu.clone());
        let mut unit = RbcdUnit::new(RbcdConfig::default(), gpu.tile_size).unwrap();
        let rbcd = sim.render_frame(&trace, PipelineMode::Rbcd, &mut unit);
        assert_eq!(
            base.raster.fragments_shaded, rbcd.raster.fragments_shaded,
            "{}: deferred culling altered the visible image",
            scene.alias
        );
        assert!(rbcd.raster.fragments_rasterized >= base.raster.fragments_rasterized);
    }
}

/// RBCD finds every *clear* overlap — objects interpenetrating over
/// many pixels. A grid of deeply overlapping sphere pairs at assorted
/// screen positions must all be detected.
#[test]
fn rbcd_detects_all_deep_overlaps() {
    let camera = Camera::perspective(Vec3::new(0.0, 0.0, 12.0), Vec3::ZERO, 1.0, 0.1, 100.0);
    let sphere = shapes::icosphere(0.6, 2);
    let mut draws = Vec::new();
    let mut expected = Vec::new();
    for k in 0..6u16 {
        let base = Vec3::new((k % 3) as f32 * 3.0 - 3.0, (k / 3) as f32 * 2.4 - 1.2, -(k as f32) * 0.5);
        let a = ObjectId::new(2 * k + 1);
        let b = ObjectId::new(2 * k + 2);
        draws.push(DrawCommand::collidable(sphere.clone(), a).with_model(Mat4::translation(base)));
        draws.push(
            DrawCommand::collidable(sphere.clone(), b)
                .with_model(Mat4::translation(base + Vec3::new(0.7, 0.2, 0.1))),
        );
        expected.push((a, b));
    }
    let trace = FrameTrace::new(camera, draws);
    let rbcd = detect_frame_collisions(&trace, &small_gpu(), &RbcdConfig::default());
    let pairs = rbcd.pairs();
    for (a, b) in expected {
        assert!(pairs.contains(&(a, b)), "missed deep overlap ({a}, {b})");
    }
}

/// On a real workload frame, image-space detection can miss *sub-pixel*
/// overlap slivers (the paper's finite-resolution caveat, §2.1) — but
/// raising the resolution must monotonically recover pairs, and no
/// detected pair may be a fabrication relative to the broad phase.
#[test]
fn resolution_reduces_grazing_misses() {
    let scene = rbcd_workloads::cap();
    let frame = 5;
    let trace = scene.frame_trace(frame);

    let meshes = scene.collidable_meshes();
    let transforms = scene.collidable_transforms(frame);
    let world: Vec<_> = meshes
        .iter()
        .zip(&transforms)
        .map(|((id, mesh), m)| (*id, mesh.transformed(m)))
        .collect();
    let mut exact = std::collections::BTreeSet::new();
    for i in 0..world.len() {
        for j in (i + 1)..world.len() {
            if intersect::meshes_intersect(&world[i].1, &world[j].1) {
                exact.insert((world[i].0, world[j].0));
            }
        }
    }

    let found_at = |w: u32, h: u32| {
        let gpu = GpuConfig { viewport: Viewport::new(w, h), ..GpuConfig::default() };
        let pairs = detect_frame_collisions(&trace, &gpu, &RbcdConfig::default()).pairs();
        exact.iter().filter(|p| pairs.contains(p)).count()
    };
    let low = found_at(200, 120);
    let high = found_at(800, 480);
    assert!(high >= low, "higher resolution lost pairs ({low} -> {high})");
    assert!(high >= 1, "the paper resolution should catch real overlaps");
}

/// The full experiment runner produces coherent results on a short clip.
#[test]
fn benchmark_runner_end_to_end() {
    let scene = rbcd_workloads::temple();
    let opts = RunOptions {
        frames: Some(3),
        // Fragment work scales with resolution, so use a viewport big
        // enough for the raster pipeline to dominate as it does at WVGA.
        gpu: GpuConfig { viewport: Viewport::new(320, 200), ..GpuConfig::default() },
        m_sweep: vec![4, 16],
        zeb_counts: vec![1, 2],
        ..RunOptions::default()
    };
    let r = run_benchmark(&scene, &opts);
    // Ordering invariants of the paper's figures.
    assert!(r.baseline.seconds > 0.0);
    assert!(r.normalized_time(&r.rbcd1) >= r.normalized_time(&r.rbcd2) * 0.999);
    assert!(r.comparison(&r.rbcd2, &r.cpu_broad).speedup > 1.0);
    assert!(r.cpu_gjk.report.cycles >= r.cpu_broad.report.cycles);
    assert!(r.overflow[0].1 >= r.overflow[1].1, "overflow falls with M");
    // At full WVGA the raster share is ~80% (Fig. 10); at this
    // reduced test resolution the fragment load shrinks, so only
    // require a clear plurality.
    assert!(r.raster_fraction() > 0.35, "raster pipeline leads");
    let (loads, prims, frags, cycles) = r.activity_factors();
    assert!(loads >= 1.0 && prims >= 1.0 && frags >= 1.0 && cycles >= 1.0);
}

/// Per-frame GPU/CPU runs are deterministic: the same trace produces the
/// same statistics.
#[test]
fn runs_are_deterministic() {
    let scene = rbcd_workloads::crazy();
    let opts = RunOptions { frames: Some(2), gpu: small_gpu(), ..RunOptions::default() };
    let a = runner::run_gpu(&scene, 2, &opts, Some(RbcdConfig::default()));
    let b = runner::run_gpu(&scene, 2, &opts, Some(RbcdConfig::default()));
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.pairs, b.pairs);
    let ca = runner::run_cpu(&scene, 2, &opts, Phase::BroadAndNarrow);
    let cb = runner::run_cpu(&scene, 2, &opts, Phase::BroadAndNarrow);
    assert_eq!(ca.report, cb.report);
    assert_eq!(ca.pairs, cb.pairs);
}

/// Figure 2 accuracy ordering holds end-to-end at the paper's resolution.
#[test]
fn figure2_accuracy_ordering() {
    let verdicts = rbcd_bench::accuracy::figure2_verdicts(&GpuConfig::default());
    let (aabb, gjk, rbcd) = rbcd_bench::accuracy::false_positive_counts(&verdicts);
    assert_eq!((aabb, gjk, rbcd), (2, 1, 0));
}
